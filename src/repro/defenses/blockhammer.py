"""BlockHammer (Yağlıkçı+, HPCA 2021): blacklist and throttle.

BlockHammer tracks per-row activation rates with dual counting Bloom
filters and *throttles* (delays) activations of rows whose observed
count approaches the safe limit, so no row can be hammered past the
threshold within a refresh window.  Unlike the refresh-based defenses
it performs no victim refreshes at all.

Model of the throttle: once a row's count estimate passes the
blacklist threshold ``n_bl = T / 4``, subsequent activations of that
row are delayed so consecutive activations are at least
``epoch / (T / 2)`` apart -- capping the achievable count within an
epoch at ``T / 2`` (the standard double-sided safety factor: each
victim sees hammers from two aggressors).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.defenses.base import Defense, Mitigation, ThrottleDelay
from repro.defenses.bloom import DualCountingBloomFilter

#: DDR4 refresh window at normal temperature (ns).
DEFAULT_EPOCH_NS = 64_000_000.0


class BlockHammer(Defense):
    """Counting-Bloom-filter blacklisting plus activation throttling."""

    name = "BlockHammer"

    def __init__(
        self,
        hc_first: float,
        *,
        epoch_ns: float = DEFAULT_EPOCH_NS,
        n_counters: int = 1024,
        n_hashes: int = 4,
        blacklist_fraction: float = 0.25,
        quota_fraction: float = 0.5,
        **kwargs,
    ) -> None:
        super().__init__(hc_first, **kwargs)
        if epoch_ns <= 0:
            raise ValueError("epoch must be positive")
        if not 0 < blacklist_fraction < quota_fraction <= 1.0:
            raise ValueError("require 0 < blacklist_fraction < quota_fraction <= 1")
        self.epoch_ns = epoch_ns
        self.blacklist_fraction = blacklist_fraction
        self.quota_fraction = quota_fraction
        self._filters: Dict[int, DualCountingBloomFilter] = {}
        self._n_counters = n_counters
        self._n_hashes = n_hashes
        self._last_act_ns: Dict[Tuple[int, int], float] = {}

    def _filter(self, bank: int) -> DualCountingBloomFilter:
        if bank not in self._filters:
            self._filters[bank] = DualCountingBloomFilter(
                self._n_counters, self._n_hashes, self.seed + bank
            )
        return self._filters[bank]

    def minimum_gap_ns(self, threshold: float) -> float:
        """Enforced ACT-to-ACT gap for a blacklisted row."""
        quota = max(1.0, self.quota_fraction * threshold)
        return self.epoch_ns / quota

    def on_activation(self, bank: int, row: int, now_ns: float) -> List[Mitigation]:
        self.stats.activations_observed += 1
        filt = self._filter(bank)
        filt.insert(row)
        count = filt.estimate(row)
        threshold = self.min_victim_threshold(bank, row)
        mitigations: List[Mitigation] = []
        if count > self.blacklist_fraction * threshold:
            gap = self.minimum_gap_ns(threshold)
            last = self._last_act_ns.get((bank, row), -gap)
            delay = max(0.0, gap - (now_ns - last))
            if delay > 0:
                mitigations.append(ThrottleDelay(delay_ns=delay))
            self._last_act_ns[(bank, row)] = now_ns + delay
        else:
            self._last_act_ns[(bank, row)] = now_ns
        self.stats.record(mitigations)
        return mitigations

    def on_refresh_window(self, now_ns: float) -> None:
        for filt in self._filters.values():
            filt.rotate()
        self._last_act_ns.clear()
