"""Counting Bloom filters (BlockHammer's tracking substrate).

BlockHammer tracks per-row activation rates with a pair of counting
Bloom filters used in alternating epochs, so stale history expires
without per-row storage.  The filter overestimates (never
underestimates) a row's count, which is the direction a security
mechanism needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np


@dataclass
class CountingBloomFilter:
    """A counting Bloom filter over row addresses."""

    n_counters: int = 1024
    n_hashes: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_counters < 1 or self.n_hashes < 1:
            raise ValueError("filter dimensions must be positive")
        self._counters = np.zeros(self.n_counters, dtype=np.int64)
        rng = np.random.default_rng(self.seed)
        # Odd multipliers give full-period multiplicative hashes.
        self._multipliers = rng.integers(1, 2**31, size=self.n_hashes) * 2 + 1
        self._offsets = rng.integers(0, 2**31, size=self.n_hashes)

    def _indices(self, key: int) -> np.ndarray:
        return ((key * self._multipliers + self._offsets) >> 7) % self.n_counters

    def insert(self, key: int) -> None:
        self._counters[self._indices(key)] += 1

    def estimate(self, key: int) -> int:
        """Count estimate: never below the true insertion count."""
        return int(self._counters[self._indices(key)].min())

    def clear(self) -> None:
        self._counters[:] = 0

    @property
    def total_insertions(self) -> int:
        return int(self._counters.sum() // self.n_hashes)


@dataclass
class DualCountingBloomFilter:
    """BlockHammer's epoch-rotating filter pair.

    Both filters receive every insert; queries read the *older* filter,
    which always holds at least one full epoch of history, so a row's
    count is never underestimated right after an epoch boundary.  At
    each boundary the older filter is cleared and the roles swap.
    """

    n_counters: int = 1024
    n_hashes: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        self._filters = [
            CountingBloomFilter(self.n_counters, self.n_hashes, self.seed),
            CountingBloomFilter(self.n_counters, self.n_hashes, self.seed + 1),
        ]
        self._older = 0

    def insert(self, key: int) -> None:
        for filt in self._filters:
            filt.insert(key)

    def estimate(self, key: int) -> int:
        return self._filters[self._older].estimate(key)

    def rotate(self) -> None:
        """Epoch boundary: retire the older filter's history."""
        self._filters[self._older].clear()
        self._older = 1 - self._older
