"""AQUA (Saxena+, MICRO 2022): quarantine aggressor rows.

AQUA tracks per-row activation counts and, when a row crosses half
its threshold, *migrates* it into a reserved quarantine region of the
same bank, physically separating the aggressor from its victims.  The
quarantine is a circular buffer; quarantined rows return to their home
location lazily (modelled by clearing state each refresh window).

The overhead driver is the row-copy traffic, proportional to the
activation rate divided by the threshold -- so Svärd's relaxed
thresholds on strong rows directly reduce migrations.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.defenses.base import Defense, Mitigation, RowMigration

#: Fraction of the bank reserved as the quarantine region (the AQUA
#: paper reserves ~1% of DRAM capacity).
QUARANTINE_FRACTION = 0.01


class Aqua(Defense):
    """Counter-based aggressor-row quarantine by migration."""

    name = "AQUA"

    def __init__(
        self,
        hc_first: float,
        *,
        migrate_fraction: float = 0.5,
        **kwargs,
    ) -> None:
        super().__init__(hc_first, **kwargs)
        if not 0 < migrate_fraction <= 1.0:
            raise ValueError("migrate_fraction must be in (0, 1]")
        self.migrate_fraction = migrate_fraction
        self.quarantine_rows = max(1, int(self.rows_per_bank * QUARANTINE_FRACTION))
        self._counts: Dict[Tuple[int, int], int] = {}
        self._quarantine_head: Dict[int, int] = {}
        #: Forward mapping of quarantined rows (row -> quarantine slot).
        self.indirection: Dict[Tuple[int, int], int] = {}

    def _next_quarantine_slot(self, bank: int) -> int:
        head = self._quarantine_head.get(bank, 0)
        self._quarantine_head[bank] = (head + 1) % self.quarantine_rows
        # Quarantine occupies the top of the bank.
        return self.rows_per_bank - self.quarantine_rows + head

    def on_activation(self, bank: int, row: int, now_ns: float) -> List[Mitigation]:
        self.stats.activations_observed += 1
        key = (bank, row)
        count = self._counts.get(key, 0) + 1
        self._counts[key] = count
        threshold = self.min_victim_threshold(bank, row)
        if count < self.migrate_fraction * threshold:
            return []
        slot = self._next_quarantine_slot(bank)
        self.indirection[key] = slot
        self._counts[key] = 0
        mitigations: List[Mitigation] = [
            RowMigration(bank=bank, src_row=row, dst_row=slot)
        ]
        self.stats.record(mitigations)
        return mitigations

    def on_refresh_window(self, now_ns: float) -> None:
        self._counts.clear()
        self.indirection.clear()
