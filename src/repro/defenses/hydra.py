"""Hydra (Qureshi+, ISCA 2022): hybrid activation tracking.

Hydra keeps a small *group count table* (GCT) in the memory
controller: rows share a group counter until the group's total
activation count crosses a threshold.  Only then does Hydra allocate
exact per-row counters, which live *in DRAM* and are cached in a
small *row count cache* (RCC).  The off-chip counter traffic on RCC
misses is Hydra's dominant overhead -- notably, it depends on the
access pattern, not on the threshold, which is why Svärd helps Hydra
least (Obsv 14).

When a row's exact count reaches half its threshold, Hydra refreshes
the neighbours and resets the counter.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Set, Tuple

from repro.defenses.base import (
    CounterTraffic,
    Defense,
    Mitigation,
    VictimRefresh,
)


class Hydra(Defense):
    """Group counters + in-DRAM per-row counters + counter cache."""

    name = "Hydra"

    def __init__(
        self,
        hc_first: float,
        *,
        group_size: int = 128,
        gct_fraction: float = 0.2,
        refresh_fraction: float = 0.5,
        rcc_entries: int = 4096,
        **kwargs,
    ) -> None:
        super().__init__(hc_first, **kwargs)
        if group_size < 1 or rcc_entries < 1:
            raise ValueError("group size and cache size must be positive")
        if not 0 < gct_fraction < refresh_fraction <= 1.0:
            raise ValueError("require 0 < gct_fraction < refresh_fraction <= 1")
        self.group_size = group_size
        self.gct_fraction = gct_fraction
        self.refresh_fraction = refresh_fraction
        self.rcc_entries = rcc_entries
        self._group_counts: Dict[Tuple[int, int], int] = {}
        self._tracked_groups: Set[Tuple[int, int]] = set()
        self._row_counts: Dict[Tuple[int, int], int] = {}
        self._rcc: "OrderedDict[Tuple[int, int], bool]" = OrderedDict()

    # ------------------------------------------------------------------

    def _group_of(self, bank: int, row: int) -> Tuple[int, int]:
        return (bank, row // self.group_size)

    def _rcc_access(self, bank: int, row: int) -> Tuple[int, int]:
        """Access the row count cache; returns (reads, writes) to DRAM."""
        key = (bank, row)
        if key in self._rcc:
            self._rcc.move_to_end(key)
            self._rcc[key] = True  # counter incremented: dirty
            return 0, 0
        reads, writes = 1, 0  # miss: fetch the counter from DRAM
        if len(self._rcc) >= self.rcc_entries:
            _, dirty = self._rcc.popitem(last=False)
            if dirty:
                writes += 1  # write back the evicted counter
        self._rcc[key] = True
        return reads, writes

    # ------------------------------------------------------------------

    def on_activation(self, bank: int, row: int, now_ns: float) -> List[Mitigation]:
        self.stats.activations_observed += 1
        mitigations: List[Mitigation] = []
        group = self._group_of(bank, row)
        threshold = self.min_victim_threshold(bank, row)

        if group not in self._tracked_groups:
            count = self._group_counts.get(group, 0) + 1
            self._group_counts[group] = count
            if count > self.gct_fraction * threshold:
                # Escalate: per-row counters start at the group count
                # (conservative) and live in DRAM from now on.
                self._tracked_groups.add(group)
            else:
                return []

        reads, writes = self._rcc_access(bank, row)
        if reads or writes:
            mitigations.append(CounterTraffic(bank=bank, reads=reads, writes=writes))

        key = (bank, row)
        count = self._row_counts.get(key, self._group_counts.get(group, 0)) + 1
        self._row_counts[key] = count
        if count >= self.refresh_fraction * threshold:
            mitigations.append(VictimRefresh(bank=bank, rows=self.victim_rows(row)))
            self._row_counts[key] = 0
        self.stats.record(mitigations)
        return mitigations

    def on_refresh_window(self, now_ns: float) -> None:
        self._group_counts.clear()
        self._tracked_groups.clear()
        self._row_counts.clear()
        # Cached counters are now stale; drop them (clean: the reset
        # value is implicit).
        self._rcc.clear()
