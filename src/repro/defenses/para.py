"""PARA: Probabilistic Adjacent Row Activation (Kim+, ISCA 2014).

On every activation, each neighbouring (victim) row is preventively
refreshed with a small probability ``p``.  The probability that a
victim survives ``T`` hammers without a refresh is ``(1 - p)^T``, so
``p = C / T`` with ``C = ln(2) * security_bits`` bounds the failure
probability at ``2^-security_bits``.

With Svärd, ``T`` is the *victim's own* threshold rather than the
module-wide worst case, so strong rows are refreshed proportionally
less often (Section 6.1's running example).
"""

from __future__ import annotations

import math
import random
from typing import List

from repro.defenses.base import Defense, Mitigation, VictimRefresh


class Para(Defense):
    """Stateless probabilistic victim refresh."""

    name = "PARA"

    def __init__(self, hc_first: float, *, security_bits: float = 80.0, **kwargs) -> None:
        super().__init__(hc_first, **kwargs)
        if security_bits <= 0:
            raise ValueError("security_bits must be positive")
        self.security_bits = security_bits
        self._coefficient = math.log(2.0) * security_bits
        self._rng = random.Random(self.seed)

    def refresh_probability(self, threshold: float) -> float:
        """Per-activation refresh probability for one victim."""
        return min(1.0, self._coefficient / threshold)

    def on_activation(self, bank: int, row: int, now_ns: float) -> List[Mitigation]:
        self.stats.activations_observed += 1
        refresh_rows = []
        for victim in self.victim_rows(row):
            p = self.refresh_probability(self.thresholds.threshold(bank, victim))
            if self._rng.random() < p:
                refresh_rows.append(victim)
        if not refresh_rows:
            return []
        mitigations: List[Mitigation] = [
            VictimRefresh(bank=bank, rows=tuple(refresh_rows))
        ]
        self.stats.record(mitigations)
        return mitigations
