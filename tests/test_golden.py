"""Golden regression tests for the key scalar experiment outputs.

Each test regenerates a small fixed-scale experiment and compares its
headline numbers against a snapshot in ``tests/golden/*.json``.  The
snapshots pin the reproduction: an accidental change to the fault
model, the simulator, or the seeding shows up here as a concrete
numeric diff even when the paper's qualitative observations still
hold.

Regenerating (after an *intentional* behavior change)::

    PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden

then review the JSON diff like any other code change.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import (
    fig3_ber_distribution,
    fig5_hcfirst_distribution,
    fig12_performance,
    table3_features,
    table5_modules,
)
from repro.experiments.common import ExperimentScale

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Matches TestFig12's scale so in-process caches stay warm.
FIG12_SCALE = ExperimentScale(
    rows_per_bank=1024,
    banks=(1, 4),
    n_mixes=1,
    requests_per_core=1200,
    hc_first_values=(1024, 64),
    svard_profiles=("S0",),
    seed=3,
)
#: Matches test_experiments' FEATURE_SCALE / ONE_MODULE for the same reason.
FEATURE_SCALE = ExperimentScale(rows_per_bank=2048, banks=(1, 4), seed=1)
MODULE_SCALE = ExperimentScale(
    rows_per_bank=1024, banks=(1, 4), modules=("H1", "M1", "S0"), seed=1
)

#: Relative tolerance when comparing floats against snapshots: tight
#: enough to catch real regressions, loose enough to tolerate
#: platform-level floating-point drift.
RELATIVE_TOLERANCE = 1e-9


def _assert_matches(actual, expected, path=""):
    if isinstance(expected, dict):
        assert isinstance(actual, dict), f"{path}: expected a mapping"
        assert sorted(actual) == sorted(expected), (
            f"{path}: keys {sorted(actual)} != golden {sorted(expected)}"
        )
        for key in expected:
            _assert_matches(actual[key], expected[key], f"{path}/{key}")
    elif isinstance(expected, list):
        assert isinstance(actual, list) and len(actual) == len(expected), (
            f"{path}: length {len(actual)} != golden {len(expected)}"
        )
        for index, (a, e) in enumerate(zip(actual, expected)):
            _assert_matches(a, e, f"{path}[{index}]")
    elif isinstance(expected, float):
        assert actual == pytest.approx(expected, rel=RELATIVE_TOLERANCE), (
            f"{path}: {actual!r} != golden {expected!r}"
        )
    else:
        assert actual == expected, f"{path}: {actual!r} != golden {expected!r}"


@pytest.fixture
def golden(request):
    """Compare ``data`` against a named snapshot (or rewrite it)."""
    update = request.config.getoption("--update-golden")

    def check(name: str, data):
        path = GOLDEN_DIR / f"{name}.json"
        rendered = json.dumps(data, indent=2, sort_keys=True) + "\n"
        if update:
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(rendered)
            return
        if not path.exists():
            pytest.fail(
                f"missing golden snapshot {path}; generate it with "
                "`pytest tests/test_golden.py --update-golden`"
            )
        _assert_matches(
            json.loads(rendered), json.loads(path.read_text())
        )

    return check


def test_fig12_metrics(golden):
    result = fig12_performance.run(FIG12_SCALE, defenses=("PARA", "RRS"))
    golden("fig12_small", {
        "weighted_speedup": {
            f"{defense}|{config}|{hc}": metrics.weighted_speedup
            for (defense, config, hc), metrics in sorted(result.metrics.items())
        },
        "max_slowdown": {
            f"{defense}|{config}|{hc}": metrics.max_slowdown
            for (defense, config, hc), metrics in sorted(result.metrics.items())
        },
        "mean_improvement": {
            f"{defense}|{hc}": result.mean_improvement(defense, hc)
            for defense in ("PARA", "RRS")
            for hc in FIG12_SCALE.hc_first_values
        },
    })


def test_table3_feature_ranks(golden):
    result = table3_features.run(FEATURE_SCALE)
    golden("table3_features", {
        label: {
            "features": [c.feature.short_name for c in features],
            "f1": [c.f1 for c in features],
            "average_f1": result.average_f1(label),
        }
        for label, features in sorted(result.strong.items())
        if features
    })


def test_fig3_resultset(golden):
    """Characterization-side snapshot via the ResultSet JSON artifact.

    Pins the full structured output (typed tables, scalars, and the
    rendered layout) of the Fig 3 harness, not just headline numbers:
    any drift in the fault model or the BER statistics shows up as a
    concrete JSON diff.
    """
    result = fig3_ber_distribution.run(MODULE_SCALE)
    golden(
        "fig3_resultset", fig3_ber_distribution.result_set(result).to_json_dict()
    )


def test_fig5_resultset(golden):
    """Ditto for the HC_first distribution (Fig 5)."""
    result = fig5_hcfirst_distribution.run(MODULE_SCALE)
    golden(
        "fig5_resultset",
        fig5_hcfirst_distribution.result_set(result).to_json_dict(),
    )


def test_table5_rows(golden):
    result = table5_modules.run(MODULE_SCALE)
    golden("table5_small", {
        label: {
            "vendor": row.vendor,
            "measured_min": row.measured_min,
            "measured_avg": row.measured_avg,
            "measured_max": row.measured_max,
        }
        for label, row in sorted(result.rows.items())
    })
