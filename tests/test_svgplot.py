"""The pure-python SVG plotter (repro.experiments.svgplot)."""

import xml.etree.ElementTree as ElementTree

import pytest

from repro.experiments.api import PlotSpec, ResultSet, ResultTable
from repro.experiments.svgplot import SvgPlotError, render_plot


def make_result_set(rows, headers=("x", "y", "grp")):
    return ResultSet(
        experiment="demo",
        title="Demo",
        tables=(ResultTable(name="main", headers=headers, rows=rows),),
    )


def spec(**overrides):
    defaults = dict(name="p", kind="line", table="main", x="x", y=("y",))
    defaults.update(overrides)
    return PlotSpec(**defaults)


def parse(svg: str) -> ElementTree.Element:
    """Well-formedness gate: SVG must parse as XML."""
    return ElementTree.fromstring(svg)


def tags(svg: str):
    return [
        element.tag.split("}")[-1] for element in parse(svg).iter()
    ]


LINE_ROWS = (
    (1, 2.0, "a"), (10, 3.0, "a"), (100, 2.5, "a"),
    (1, 4.0, "b"), (10, 5.0, "b"), (100, 4.5, "b"),
)


class TestLineAndScatter:
    def test_line_emits_polyline_and_markers(self):
        svg = render_plot(make_result_set(LINE_ROWS), spec(series="grp"))
        names = tags(svg)
        assert names.count("polyline") == 2  # one per series
        assert names.count("circle") == 6
        assert "title" in names  # native hover tooltips

    def test_scatter_has_markers_but_no_lines(self):
        svg = render_plot(
            make_result_set(LINE_ROWS), spec(kind="scatter", series="grp")
        )
        names = tags(svg)
        assert "polyline" not in names
        assert names.count("circle") == 6

    def test_two_series_get_distinct_colors_and_a_legend(self):
        svg = render_plot(make_result_set(LINE_ROWS), spec(series="grp"))
        root = parse(svg)
        colors = {
            element.get("stroke")
            for element in root.iter()
            if element.tag.endswith("polyline")
        }
        assert len(colors) == 2
        legend_labels = [
            element.text
            for element in root.iter()
            if element.tag.endswith("text") and element.text in ("a", "b")
        ]
        assert sorted(legend_labels) == ["a", "b"]

    def test_single_series_has_no_legend(self):
        rows = ((1, 2.0, "a"), (2, 3.0, "a"))
        svg = render_plot(make_result_set(rows), spec())
        assert "a" not in [e.text for e in parse(svg).iter()]

    def test_none_cells_are_skipped_not_zero(self):
        rows = ((1, 2.0, "a"), (2, None, "a"), (3, 4.0, "a"))
        svg = render_plot(make_result_set(rows), spec())
        assert len([t for t in tags(svg) if t == "circle"]) == 2

    def test_log_axes(self):
        svg = render_plot(
            make_result_set(LINE_ROWS), spec(series="grp", logx=True)
        )
        text = [
            e.text for e in parse(svg).iter() if e.tag.endswith("text")
        ]
        assert "1" in text and "10" in text and "100" in text

    def test_log_axis_rejects_nonpositive(self):
        rows = ((0, 2.0, "a"), (10, 3.0, "a"))
        with pytest.raises(SvgPlotError, match="positive"):
            render_plot(make_result_set(rows), spec(logx=True))

    def test_categorical_x_uses_labels_as_ticks(self):
        rows = (("alpha", 2.0, "a"), ("beta", 3.0, "a"))
        svg = render_plot(make_result_set(rows), spec())
        text = [
            e.text for e in parse(svg).iter() if e.tag.endswith("text")
        ]
        assert "alpha" in text and "beta" in text

    def test_none_x_cells_get_no_phantom_category(self):
        rows = (("alpha", 2.0, "a"), (None, 9.0, "a"), ("beta", 3.0, "a"))
        svg = render_plot(make_result_set(rows), spec())
        text = [
            e.text for e in parse(svg).iter() if e.tag.endswith("text")
        ]
        assert "alpha" in text and "beta" in text
        assert "-" not in text  # no empty tick for the skipped row
        assert len([t for t in tags(svg) if t == "circle"]) == 2

    def test_categorical_x_with_logx_rejected(self):
        rows = (("alpha", 2.0, "a"),)
        with pytest.raises(SvgPlotError, match="numeric"):
            render_plot(make_result_set(rows), spec(logx=True))

    def test_band_draws_envelope_polygon(self):
        result = ResultSet(
            experiment="demo",
            title="Demo",
            tables=(ResultTable(
                name="main",
                headers=("x", "y_mean", "y_min", "y_max"),
                rows=((1, 2.0, 1.5, 2.5), (2, 3.0, 2.4, 3.6)),
            ),),
        )
        banded = spec(
            y=("y_mean",), ybands=(("y_mean", "y_min", "y_max"),)
        )
        assert "polygon" in tags(render_plot(result, banded))

    def test_missing_column_is_a_clean_error(self):
        with pytest.raises(SvgPlotError, match="no column 'nope'"):
            render_plot(make_result_set(LINE_ROWS), spec(y=("nope",)))

    def test_empty_table_is_a_clean_error(self):
        with pytest.raises(SvgPlotError, match="no rows"):
            render_plot(make_result_set(()), spec())

    def test_more_than_eight_series_reuse_hues_with_dashes(self):
        rows = tuple(
            (x, float(x + index), f"s{index}")
            for index in range(10)
            for x in (1, 2)
        )
        svg = render_plot(make_result_set(rows), spec(series="grp"))
        root = parse(svg)
        dashed = [
            element
            for element in root.iter()
            if element.tag.endswith("polyline")
            and element.get("stroke-dasharray")
        ]
        assert len(dashed) == 2  # series 9 and 10 wrap with dashes


class TestBars:
    BAR_ROWS = (("A", 1.0, "g"), ("B", 2.0, "g"), ("C", 1.5, "g"))

    def test_bar_emits_rects_with_tooltips(self):
        svg = render_plot(
            make_result_set(self.BAR_ROWS), spec(kind="bar")
        )
        root = parse(svg)
        rects = [
            element
            for element in root.iter()
            if element.tag.endswith("rect") and element.get("rx")
        ]
        assert len(rects) == 3
        assert all(
            any(child.tag.endswith("title") for child in rect)
            for rect in rects
        )

    def test_grouped_bars_one_color_per_y(self):
        result = ResultSet(
            experiment="demo",
            title="Demo",
            tables=(ResultTable(
                name="main",
                headers=("x", "measured", "paper"),
                rows=(("A", 1.0, 1.1), ("B", 2.0, 1.9)),
            ),),
        )
        svg = render_plot(
            result, spec(kind="bar", y=("measured", "paper"))
        )
        root = parse(svg)
        colors = {
            element.get("fill")
            for element in root.iter()
            if element.tag.endswith("rect") and element.get("rx")
        }
        assert len(colors) == 2

    def test_logy_bars_anchor_at_axis_floor(self):
        rows = (("A", 0.01, "g"), ("B", 0.1, "g"))
        svg = render_plot(
            make_result_set(rows), spec(kind="bar", logy=True)
        )
        assert "rect" in tags(svg)

    def test_bar_band_draws_whiskers(self):
        result = ResultSet(
            experiment="demo",
            title="Demo",
            tables=(ResultTable(
                name="main",
                headers=("x", "v_mean", "v_min", "v_max"),
                rows=(("A", 2.0, 1.0, 3.0),),
            ),),
        )
        svg = render_plot(result, spec(
            kind="bar", y=("v_mean",),
            ybands=(("v_mean", "v_min", "v_max"),),
        ))
        root = parse(svg)
        whiskers = [
            element
            for element in root.iter()
            if element.tag.endswith("line")
            and element.get("stroke") == "#0b0b0b"
        ]
        assert len(whiskers) == 3  # cap, cap, stem

    def test_all_none_bars_error(self):
        rows = (("A", None, "g"),)
        with pytest.raises(SvgPlotError, match="no drawable"):
            render_plot(make_result_set(rows), spec(kind="bar"))


class TestRealSpecs:
    def test_every_registered_experiment_plot_kind_is_covered(self):
        from repro.experiments.api import all_experiments  # noqa: F401

        # The plotter promises the three declarative kinds; PlotSpec
        # rejects everything else at construction, so the promise is
        # structural rather than per-experiment.
        for kind in ("line", "bar", "scatter"):
            assert spec(kind=kind).kind == kind
