"""Cross-cutting property-based tests on the core invariants.

These complement the per-module unit tests with hypothesis-driven
checks of the properties the paper's security argument and our
calibration rest on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.binning import VulnerabilityBins
from repro.core.profile import VulnerabilityProfile
from repro.core.svard import Svard
from repro.defenses.bloom import CountingBloomFilter, DualCountingBloomFilter
from repro.defenses.rrs import MisraGriesTracker
from repro.faults.aging import AgingModel
from repro.faults.disturbance import rowpress_multiplier
from repro.faults.modules import MODULES, module_by_label
from repro.faults.variation import HC_GRID
from repro.sim.metrics import harmonic_speedup, max_slowdown, weighted_speedup


class TestBloomProperties:
    @given(
        keys=st.lists(st.integers(min_value=0, max_value=10_000), max_size=200),
        query=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_never_underestimates(self, keys, query):
        """The CBF property BlockHammer's security needs."""
        filt = CountingBloomFilter(n_counters=128, n_hashes=3, seed=1)
        for key in keys:
            filt.insert(key)
        assert filt.estimate(query) >= keys.count(query)

    @given(
        keys=st.lists(st.integers(min_value=0, max_value=100), max_size=100),
        rotations=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=30, deadline=None)
    def test_dual_filter_holds_last_epoch(self, keys, rotations):
        dual = DualCountingBloomFilter(n_counters=128, seed=2)
        for key in keys:
            dual.insert(key)
        if rotations == 0 and keys:
            assert dual.estimate(keys[0]) >= keys.count(keys[0])


class TestMisraGriesProperties:
    @given(
        stream=st.lists(st.integers(min_value=0, max_value=30), max_size=400),
        entries=st.integers(min_value=2, max_value=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_heavy_hitter_guarantee(self, stream, entries):
        """Any key with count > n/(entries+1) must be tracked."""
        tracker = MisraGriesTracker(entries)
        for key in stream:
            tracker.observe(key)
        threshold = len(stream) / (entries + 1)
        for key in set(stream):
            if stream.count(key) > threshold:
                assert key in tracker.counts


class TestRowPressProperties:
    @given(
        t_on=st.floats(min_value=36.0, max_value=10_000.0),
        exponent=st.floats(min_value=0.1, max_value=1.0),
    )
    @settings(max_examples=50)
    def test_multiplier_monotone_and_at_least_one(self, t_on, exponent):
        m = rowpress_multiplier(t_on, exponent)
        assert m >= 1.0
        assert rowpress_multiplier(t_on * 2, exponent) >= m


class TestSvardSecurityProperties:
    @given(
        label=st.sampled_from(sorted(MODULES)),
        target=st.sampled_from([64, 128, 512, 4096]),
        n_bins=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=25, deadline=None)
    def test_invariant_for_any_module_scaling_binning(self, label, target, n_bins):
        profile = VulnerabilityProfile.from_ground_truth(
            module_by_label(label), banks=(1,), rows_per_bank=256
        ).scaled_to_worst_case(target)
        svard = Svard.build(profile, n_bins=n_bins)
        assert svard.verify_security_invariant()
        assert svard.worst_case_threshold() == pytest.approx(target)

    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_aging_never_breaks_reprofiled_svard(self, seed):
        """Re-profiling after aging restores the invariant."""
        field = module_by_label("H3").generate_field(
            rows_per_bank=512, seed=seed
        )
        aged = AgingModel(seed=seed).age_field(field)
        profile = VulnerabilityProfile(
            module_label="aged", per_bank={0: aged.hc_first}
        )
        assert Svard.build(profile).verify_security_invariant()


class TestBinningProperties:
    @given(
        worst=st.floats(min_value=1.0, max_value=1e4),
        ratio=st.floats(min_value=1.0, max_value=100.0),
        n_bins=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=50)
    def test_geometric_edges_ordered_and_bounded(self, worst, ratio, n_bins):
        bins = VulnerabilityBins.geometric(worst, worst * ratio, n_bins)
        assert bins.edges[0] == pytest.approx(worst)
        assert np.all(np.diff(bins.edges) > 0) or bins.n_bins == 1
        assert bins.edges[-1] <= worst * ratio + 1e-6


class TestMetricsProperties:
    @given(
        times=st.lists(
            st.tuples(
                st.floats(min_value=1.0, max_value=1e6),
                st.floats(min_value=1.0, max_value=1e6),
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=50)
    def test_metric_relationships(self, times):
        alone = [a for a, _ in times]
        shared = [s for _, s in times]
        ws = weighted_speedup(alone, shared)
        hs = harmonic_speedup(alone, shared)
        ms = max_slowdown(alone, shared)
        n = len(times)
        # Harmonic mean <= arithmetic mean of per-core speedups.
        assert hs <= ws / n + 1e-9
        # The worst slowdown bounds every per-core slowdown.
        assert all(s / a <= ms + 1e-9 for a, s in times)

    def test_equal_times_give_unit_metrics(self):
        assert harmonic_speedup([2.0] * 4, [2.0] * 4) == pytest.approx(1.0)
        assert max_slowdown([2.0] * 4, [2.0] * 4) == pytest.approx(1.0)


class TestGridMeasurementProperties:
    @given(
        label=st.sampled_from(sorted(MODULES)),
        seed=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=20, deadline=None)
    def test_measured_never_below_truth(self, label, seed):
        """Grid snapping measures a row at >= its true threshold."""
        field = module_by_label(label).generate_field(
            rows_per_bank=512, seed=seed
        )
        measured = field.measured_hc_first()
        assert np.all(measured >= field.hc_first - 1e-9)
        # ... and never more than one grid step above it.
        grid = np.asarray(HC_GRID)
        idx = np.searchsorted(grid, measured)
        lower_neighbor = np.where(idx > 0, grid[np.maximum(idx - 1, 0)], 0)
        assert np.all(field.hc_first >= lower_neighbor - 1e-9)
