"""Queue observability: heartbeat lifecycle, ``runner queue status``
snapshots (JSON + table goldens), and per-worker result provenance
flowing cache -> ResultSet -> report.

The goldens pin the exact operator-facing output for a synthetic but
fully deterministic queue state (injected clock, fixed worker ids,
fixed entry keys); regenerate after a deliberate change with
``pytest tests/test_queue_status.py --update-golden`` and review the
diff.
"""

import json
import os
import pickle
import socket
import time
from pathlib import Path

import pytest

from repro.experiments import runner
from repro.experiments.api import ResultSet
from repro.experiments.report import build_report
from repro.orchestration import (
    HeartbeatWriter,
    JobQueue,
    OrchestrationContext,
    QueueWorker,
    ResultCache,
    TaskEnvelope,
    WorkerHeartbeat,
    make_task,
    queue_status,
    render_status,
)
from repro.orchestration.jobqueue import FailureRecord

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Fixed wall clock for every golden-snapshot age computation.
NOW = 1_750_000_000.0


class FakeClock:
    def __init__(self, now: float) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def _double(task):
    return task.params * 2


def _snoop_heartbeats(task):
    """Task body: report every heartbeat visible *mid-execution*."""
    beats = JobQueue(task.params).read_heartbeats()
    return [(beat.worker_id, beat.current_lease) for beat in beats]


# ----------------------------------------------------------------------
# Heartbeat lifecycle
# ----------------------------------------------------------------------


class TestHeartbeatLifecycle:
    def test_start_writes_and_beat_refreshes(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        clock = FakeClock(1000.0)
        writer = HeartbeatWriter(
            queue, interval=0, identity="hostA:7", clock=clock
        ).start()
        [beat] = queue.read_heartbeats()
        assert beat.worker_id == "hostA:7"
        assert beat.host == "hostA" and beat.pid == 7
        assert beat.started == beat.last_beat == 1000.0
        assert beat.current_lease is None

        clock.now = 1010.0
        writer.beat(current_lease="k1", claimed=3, completed=2)
        [beat] = queue.read_heartbeats()
        assert beat.last_beat == 1010.0
        assert beat.started == 1000.0  # start time never moves
        assert beat.current_lease == "k1"
        assert (beat.claimed, beat.completed) == (3, 2)

    def test_clean_stop_removes_the_file(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        writer = HeartbeatWriter(queue, interval=0, identity="hostA:7")
        writer.start()
        assert queue.read_heartbeats()
        writer.stop(remove=True)
        assert queue.read_heartbeats() == []

    def test_stop_without_remove_leaves_final_beat(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        writer = HeartbeatWriter(queue, interval=0, identity="hostA:7")
        writer.start()
        writer.beat(current_lease="k1")
        writer.stop(remove=False)
        [beat] = queue.read_heartbeats()
        assert beat.current_lease is None  # not executing anything

    def test_background_thread_keeps_beating_while_main_is_busy(
        self, tmp_path
    ):
        """The refresh thread is what distinguishes a slow task from a
        dead worker: last_beat advances with no beat() call from the
        main thread."""
        queue = JobQueue(tmp_path / "q")
        writer = HeartbeatWriter(
            queue, interval=0.02, identity="hostA:7"
        ).start()
        try:
            [first] = queue.read_heartbeats()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                [beat] = queue.read_heartbeats()
                if beat.last_beat > first.last_beat:
                    break
                time.sleep(0.01)
            else:
                raise AssertionError("background thread never beat")
        finally:
            writer.stop(remove=True)

    def test_corrupt_heartbeat_files_are_skipped(self, tmp_path):
        queue = JobQueue(tmp_path / "q").ensure()
        (queue.workers_dir / "junk.json").write_text("not json {")
        (queue.workers_dir / "alien.json").write_text('{"format": 99}')
        queue.write_heartbeat(WorkerHeartbeat(
            worker_id="hostA:7", host="hostA", pid=7,
            started=NOW, last_beat=NOW,
        ))
        [beat] = queue.read_heartbeats()
        assert beat.worker_id == "hostA:7"

    def test_worker_run_publishes_lease_and_removes_on_exit(
        self, tmp_path
    ):
        """End to end through QueueWorker: mid-task the heartbeat names
        the lease being executed; a clean exit retires the file."""
        cache = ResultCache(tmp_path / "cache", version="v")
        queue = JobQueue(tmp_path / "cache" / "queue").ensure()
        task = make_task(("snoop",), _snoop_heartbeats, str(queue.directory))
        entry_key = cache.entry_key(task.key, "fp")
        queue.enqueue(TaskEnvelope(
            entry_key=entry_key, task=task, cache_version="v"
        ))
        worker = QueueWorker(
            queue, cache,
            poll_interval=0.01, idle_timeout=0.1, max_tasks=1,
            heartbeat_interval=60.0,  # beats only at claim/finish
        )
        stats = worker.run()
        assert stats.completed == 1
        hit, seen = cache.load(entry_key)
        assert hit
        assert seen == [(f"{socket.gethostname()}:{os.getpid()}", entry_key)]
        assert queue.read_heartbeats() == []  # clean exit removed it


# ----------------------------------------------------------------------
# `queue status` snapshots
# ----------------------------------------------------------------------


def synthetic_queue_state(root: Path) -> Path:
    """A deterministic in-flight sweep under ``root/cache``.

    Two tasks pending, one leased (45.5 s ago, held by the live
    worker), one failed, three results cached; one live and one stale
    worker.  Every timestamp is derived from ``NOW``.
    """
    cache_dir = root / "cache"
    cache_dir.mkdir(parents=True, exist_ok=True)
    for name in ("e1", "e2", "e3"):
        (cache_dir / f"{name}.pkl").write_bytes(b"x")
    (cache_dir / ".tmp-ignored.pkl").write_bytes(b"x")  # in-flight write

    queue = JobQueue(cache_dir / "queue").ensure()
    for name in ("t1", "t2"):
        (queue.tasks_dir / f"{name}.task").write_bytes(b"x")
    lease = queue.leases_dir / "l1.task"
    lease.write_bytes(b"x")
    os.utime(lease, (NOW - 45.5, NOW - 45.5))

    record = FailureRecord(
        entry_key="f1",
        task_key=("fig12", "sim", "mix007"),
        error="RuntimeError: boom",
        traceback="Traceback (most recent call last):\n  boom\n",
        worker="hostB:202",
    )
    with open(queue.failed_dir / "f1.pkl", "wb") as handle:
        pickle.dump(record, handle)

    # Liveness is judged by the heartbeat *file* mtime (the shared
    # filesystem's clock), so pin those too -- the embedded last_beat
    # values are self-reported context only.
    queue.write_heartbeat(WorkerHeartbeat(
        worker_id="hostA:101", host="hostA", pid=101,
        started=NOW - 60.0, last_beat=NOW - 2.0,
        current_lease="l1", claimed=5, completed=4, failed=0, refused=0,
    ))
    os.utime(queue.heartbeat_path("hostA:101"), (NOW - 2.0, NOW - 2.0))
    queue.write_heartbeat(WorkerHeartbeat(
        worker_id="hostB:202", host="hostB", pid=202,
        started=NOW - 600.0, last_beat=NOW - 120.0,
        current_lease=None, claimed=3, completed=2, failed=1, refused=0,
    ))
    os.utime(queue.heartbeat_path("hostB:202"), (NOW - 120.0, NOW - 120.0))
    return cache_dir


def check_golden(name: str, text: str, request) -> None:
    path = GOLDEN_DIR / name
    if request.config.getoption("--update-golden"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        return
    assert path.exists(), (
        f"missing golden {path}; generate with "
        "`pytest tests/test_queue_status.py --update-golden`"
    )
    assert path.read_text() == text, (
        f"{name} is stale; regenerate with "
        "`pytest tests/test_queue_status.py --update-golden` and "
        "review the diff"
    )


class TestQueueStatus:
    def test_json_snapshot_matches_golden(self, tmp_path, monkeypatch,
                                          request):
        monkeypatch.chdir(tmp_path)
        synthetic_queue_state(tmp_path)
        status = queue_status(Path("cache"), now=NOW)
        check_golden(
            "queue_status.json",
            json.dumps(status, indent=2, sort_keys=True) + "\n",
            request,
        )

    def test_table_rendering_matches_golden(self, tmp_path, monkeypatch,
                                            request):
        monkeypatch.chdir(tmp_path)
        synthetic_queue_state(tmp_path)
        status = queue_status(Path("cache"), now=NOW)
        check_golden(
            "queue_status.txt", render_status(status) + "\n", request
        )

    def test_counts_and_worker_classification(self, tmp_path):
        cache_dir = synthetic_queue_state(tmp_path)
        status = queue_status(cache_dir, now=NOW)
        assert status["tasks"] == {
            "pending": 2, "leased": 1, "failed": 1, "results_cached": 3,
        }
        by_id = {
            worker["worker_id"]: worker for worker in status["workers"]
        }
        assert by_id["hostA:101"]["status"] == "live"
        assert by_id["hostB:202"]["status"] == "stale"
        # The live worker's heartbeat attributes the lease it holds.
        [lease] = status["leases"]
        assert lease == {
            "entry_key": "l1", "age_seconds": 45.5, "worker": "hostA:101",
        }
        [failure] = status["failures"]
        assert failure["error"] == "RuntimeError: boom"
        assert "Traceback" in failure["traceback"]
        # Throughput counts only the live worker (4 done over its 60s
        # uptime); the stale worker's history must not dilute the rate.
        assert status["throughput"]["completed"] == 4
        assert status["throughput"]["tasks_per_second"] == round(4 / 60, 4)

    def test_results_cached_counts_migrating_keys_once(self, tmp_path):
        """Flat + sharded copies of one entry (a cache mid-migration to
        the sharded layout) must read as ONE cached result, and the
        sharded tree must be counted at all."""
        cache_dir = synthetic_queue_state(tmp_path)  # e1..e3 flat
        cache = ResultCache(cache_dir)
        duplicate = cache.path_for("e1")  # e1 again, sharded this time
        duplicate.parent.mkdir(parents=True, exist_ok=True)
        duplicate.write_bytes(b"x")
        fresh = cache.path_for("e9")
        fresh.parent.mkdir(parents=True, exist_ok=True)
        fresh.write_bytes(b"x")
        status = queue_status(cache_dir, now=NOW)
        assert status["tasks"]["results_cached"] == 4  # e1..e3 + e9

    def test_empty_queue_reports_zeros(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        status = queue_status(cache_dir, now=NOW)
        assert status["tasks"] == {
            "pending": 0, "leased": 0, "failed": 0, "results_cached": 0,
        }
        assert status["workers"] == []
        rendered = render_status(status)
        assert "none attached" in rendered

    def test_cli_json_single_document(self, tmp_path, monkeypatch,
                                      capsys):
        monkeypatch.chdir(tmp_path)
        synthetic_queue_state(tmp_path)
        assert runner.main(["queue", "status", "cache", "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["tasks"]["pending"] == 2

    def test_cli_table_output(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        synthetic_queue_state(tmp_path)
        assert runner.main(["queue", "status", "cache"]) == 0
        out = capsys.readouterr().out
        assert "2 pending, 1 leased" in out
        assert "hostA:101" in out and "stale" in out

    def test_cli_missing_cache_dir_errors(self, tmp_path, monkeypatch,
                                          capsys):
        monkeypatch.chdir(tmp_path)
        assert runner.main(["queue", "status", "nope"]) == 1
        assert "no such cache directory" in capsys.readouterr().err

    def test_cli_unknown_queue_verb_usage(self, capsys):
        assert runner.main(["queue", "frobnicate"]) == 2
        assert "queue status" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Per-worker provenance: cache -> ResultSet -> report
# ----------------------------------------------------------------------


class TestResultProvenance:
    def test_store_stamps_this_process_by_default(self, tmp_path):
        cache = ResultCache(tmp_path, version="vX")
        cache.store("k1", ("t",), 42)
        provenance = cache.load_provenance("k1")
        assert provenance["worker"] == (
            f"{socket.gethostname()}:{os.getpid()}"
        )
        assert provenance["code_version"] == "vX"
        assert provenance["stored_at"] == pytest.approx(time.time(), abs=60)

    def test_legacy_entry_without_provenance_still_loads(self, tmp_path):
        cache = ResultCache(tmp_path, version="vX")
        entry = {
            "format": 1, "entry_key": "k1", "task_key": ("t",),
            "version": "vX", "payload": 7,
        }
        # Legacy entries predate sharding: flat in the cache dir.
        with open(cache.legacy_path_for("k1"), "wb") as handle:
            pickle.dump(entry, handle)
        assert cache.load("k1") == (True, 7)
        assert cache.load_provenance("k1") is None
        assert cache.provenance_seen == {"k1": None}

    def test_remote_worker_provenance_flows_into_meta_and_report(
        self, tmp_path
    ):
        """The round-trip the report renders: a worker on another host
        stored the result; a warm run here must attribute it."""
        writer = ResultCache(tmp_path / "cache", version="vX")
        task = make_task(("t",), _double, 21)
        entry_key = writer.entry_key(task.key, "fp")
        writer.store(
            entry_key, task.key, 42,
            provenance={
                "worker": "farmhost:4242",
                "stored_at": 123.0,
                "code_version": "vX",
            },
        )

        ctx = OrchestrationContext(
            cache=ResultCache(tmp_path / "cache", version="vX")
        )
        before = runner._stats_snapshot(ctx)
        assert ctx.run([task], fingerprint="fp") == {("t",): 42}

        result_set = ResultSet(experiment="demo", title="Demo")
        runner._stamp_provenance(result_set, ctx, before)
        provenance = result_set.meta["provenance"]
        assert provenance["workers"] == {"farmhost:4242": 1}
        assert provenance["tasks"]["cache_hits"] == 1

        html = build_report([result_set])
        assert "farmhost:4242" in html

    def test_workers_scoped_per_experiment_snapshot(self, tmp_path):
        """Two experiments in one CLI invocation must not inherit each
        other's worker counts (the snapshot-delta contract)."""
        cache = ResultCache(tmp_path / "cache", version="vX")
        first = make_task(("a",), _double, 1)
        second = make_task(("b",), _double, 2)
        cache.store(
            cache.entry_key(first.key, "fp"), first.key, 2,
            provenance={"worker": "alpha:1", "stored_at": 0.0,
                        "code_version": "vX"},
        )
        cache.store(
            cache.entry_key(second.key, "fp"), second.key, 4,
            provenance={"worker": "beta:2", "stored_at": 0.0,
                        "code_version": "vX"},
        )

        ctx = OrchestrationContext(
            cache=ResultCache(tmp_path / "cache", version="vX")
        )
        first_before = runner._stats_snapshot(ctx)
        ctx.run([first], fingerprint="fp")
        first_set = ResultSet(experiment="one", title="One")
        runner._stamp_provenance(first_set, ctx, first_before)

        second_before = runner._stats_snapshot(ctx)
        ctx.run([second], fingerprint="fp")
        second_set = ResultSet(experiment="two", title="Two")
        runner._stamp_provenance(second_set, ctx, second_before)

        assert first_set.meta["provenance"]["workers"] == {"alpha:1": 1}
        assert second_set.meta["provenance"]["workers"] == {"beta:2": 1}

    def test_repeated_experiment_keeps_worker_attribution(self, tmp_path):
        """``runner run fig12 fig12``: the repeat serves the same cached
        entries again, and its workers map must attribute them too
        (regression: slicing the first-seen dict positionally left the
        repeat's slice -- and workers map -- empty)."""
        cache = ResultCache(tmp_path / "cache", version="vX")
        task = make_task(("t",), _double, 21)
        cache.store(
            cache.entry_key(task.key, "fp"), task.key, 42,
            provenance={"worker": "farmhost:7", "stored_at": 0.0,
                        "code_version": "vX"},
        )

        ctx = OrchestrationContext(
            cache=ResultCache(tmp_path / "cache", version="vX")
        )
        for attempt in ("first", "repeat"):
            before = runner._stats_snapshot(ctx)
            assert ctx.run([task], fingerprint="fp") == {("t",): 42}
            result_set = ResultSet(experiment="demo", title="Demo")
            runner._stamp_provenance(result_set, ctx, before)
            provenance = result_set.meta["provenance"]
            assert provenance["workers"] == {"farmhost:7": 1}, attempt
            assert provenance["tasks"]["cache_hits"] == 1, attempt

    def test_partial_per_seed_worker_counts_render_with_zero_holes(self):
        """A worker that served only some seeds of an aggregate merges
        into a list with None holes; the report must render the N+M
        per-seed convention, not leak commas into the worker list."""
        from repro.experiments.report import _format_worker_count

        assert _format_worker_count(3) == "3"
        assert _format_worker_count([5, None]) == "5+0"
        assert _format_worker_count([None, 2]) == "0+2"

    def test_seed_without_workers_key_keeps_other_seeds_attribution(
        self
    ):
        """Aggregating a seed that predates worker provenance (or ran
        --no-cache) with one that has it must keep the attribution,
        not silently drop the whole row."""
        from repro.experiments.aggregate import ResultSetAggregate

        with_workers = ResultSet(
            experiment="demo", title="Demo",
            scalars={"x": 1.0},
            meta={"provenance": {
                "backend": "queue", "cache_dir": "c",
                "tasks": {"submitted": 5, "cache_hits": 0, "executed": 5},
                "workers": {"hostA:1": 5},
            }},
        )
        without_workers = ResultSet(
            experiment="demo", title="Demo",
            scalars={"x": 2.0},
            meta={"provenance": {
                "backend": "serial", "cache_dir": None,
                "tasks": {"submitted": 5, "cache_hits": 0, "executed": 5},
            }},
        )
        merged = ResultSetAggregate.from_result_sets(
            [with_workers, without_workers], [0, 1]
        ).to_result_set()
        html = build_report([merged])
        assert "hostA:1 ×5+0" in html

    def test_participating_submitter_counts_local_task_once(
        self, tmp_path
    ):
        """A locally executed queue task is stored then immediately
        re-read; the provenance log must count it once, not twice."""
        from repro.orchestration import QueueBackend, default_queue_dir

        cache = ResultCache(tmp_path / "cache")
        backend = QueueBackend(default_queue_dir(cache.directory))
        ctx = OrchestrationContext(cache=cache, backend=backend)
        before = runner._stats_snapshot(ctx)
        assert ctx.run(
            [make_task(("t",), _double, 3)], fingerprint="fp"
        ) == {("t",): 6}
        result_set = ResultSet(experiment="demo", title="Demo")
        runner._stamp_provenance(result_set, ctx, before)
        own = f"{socket.gethostname()}:{os.getpid()}"
        assert result_set.meta["provenance"]["workers"] == {own: 1}
