"""Tests for the memory-system simulator and metrics."""

import pytest

from repro.defenses.base import GlobalThreshold
from repro.defenses.para import Para
from repro.defenses.rrs import RandomizedRowSwap
from repro.sim.cache import SetAssociativeCache
from repro.sim.config import MitigationCosts, SystemConfig
from repro.sim.engine import MemorySystem, TraceStep
from repro.sim.metrics import (
    compute_metrics,
    harmonic_speedup,
    max_slowdown,
    weighted_speedup,
)
from repro.sim.request import MemoryRequest
from repro.workloads.suites import profile_by_name
from repro.workloads.synthetic import SyntheticTrace


class FixedTrace:
    """Deterministic trace for unit tests."""

    def __init__(self, steps):
        self.steps = list(steps)
        self._i = 0

    def next_step(self, chain):
        step = self.steps[self._i % len(self.steps)]
        self._i += 1
        return step


def small_config(**overrides):
    defaults = dict(
        cores=1, ranks=1, bank_groups=2, banks_per_group=2,
        rows_per_bank=4096, requests_per_core=200, mlp_per_core=2,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


class TestSystemConfig:
    def test_table4_defaults(self):
        config = SystemConfig()
        assert config.cores == 8
        assert config.ranks == 2
        assert config.total_banks == 32
        assert config.rows_per_bank == 128 * 1024
        assert config.column_cap == 16

    def test_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(cores=0)
        with pytest.raises(ValueError):
            SystemConfig(column_cap=0)

    def test_mitigation_costs_ordering(self):
        costs = MitigationCosts()
        assert costs.victim_refresh_ns < costs.counter_access_ns
        assert costs.counter_access_ns < costs.migration_ns
        assert costs.swap_ns == pytest.approx(2 * costs.migration_ns)


class TestMemoryRequest:
    def test_latency(self):
        request = MemoryRequest(core=0, bank=0, row=0, column=0, arrival_ns=10.0)
        request.completion_ns = 60.0
        assert request.latency_ns == pytest.approx(50.0)

    def test_latency_requires_completion(self):
        request = MemoryRequest(core=0, bank=0, row=0, column=0)
        with pytest.raises(ValueError):
            _ = request.latency_ns

    def test_negative_coordinates_rejected(self):
        with pytest.raises(ValueError):
            MemoryRequest(core=-1, bank=0, row=0, column=0)


class TestEngineBasics:
    def test_all_requests_complete(self):
        config = small_config()
        trace = FixedTrace([TraceStep(bank=0, row=5, column=c % 8, gap_ns=10.0)
                            for c in range(8)])
        result = MemorySystem(config, [trace]).run()
        assert result.cores[0].completed_requests == 200
        assert result.total_ns > 0

    def test_row_hits_cheaper_than_misses(self):
        config = small_config(requests_per_core=300)
        hit_trace = FixedTrace([TraceStep(bank=0, row=5, column=c % 64, gap_ns=5.0)
                                for c in range(64)])
        miss_trace = FixedTrace([TraceStep(bank=0, row=r, column=0, gap_ns=5.0)
                                 for r in range(64)])
        t_hits = MemorySystem(config, [hit_trace]).run().cores[0].finish_ns
        t_miss = MemorySystem(small_config(requests_per_core=300),
                              [miss_trace]).run().cores[0].finish_ns
        assert t_hits < t_miss * 0.6

    def test_row_hit_rate_reported(self):
        config = small_config()
        trace = FixedTrace([TraceStep(bank=0, row=5, column=c % 32, gap_ns=5.0)
                            for c in range(32)])
        result = MemorySystem(config, [trace]).run()
        assert result.row_hit_rate > 0.8

    def test_bank_parallelism_helps(self):
        serial = FixedTrace([TraceStep(bank=0, row=r % 64, column=0, gap_ns=2.0)
                             for r in range(64)])
        parallel = FixedTrace([TraceStep(bank=r % 4, row=r % 64, column=0, gap_ns=2.0)
                               for r in range(64)])
        t_serial = MemorySystem(small_config(mlp_per_core=4),
                                [serial]).run().cores[0].finish_ns
        t_parallel = MemorySystem(small_config(mlp_per_core=4),
                                  [parallel]).run().cores[0].finish_ns
        assert t_parallel < t_serial

    def test_refresh_issued(self):
        config = small_config(requests_per_core=2000)
        trace = FixedTrace([TraceStep(bank=0, row=r % 16, column=0, gap_ns=100.0)
                            for r in range(16)])
        result = MemorySystem(config, [trace]).run()
        assert result.refreshes_issued >= 1

    def test_trace_count_must_match_cores(self):
        config = small_config(cores=2)
        with pytest.raises(ValueError):
            MemorySystem(config, [FixedTrace([TraceStep(0, 0, 0)])])

    def test_multicore_contention_slows_cores(self):
        trace_factory = lambda: FixedTrace(
            [TraceStep(bank=0, row=r % 32, column=0, gap_ns=5.0) for r in range(32)]
        )
        alone = MemorySystem(small_config(), [trace_factory()]).run()
        shared = MemorySystem(
            small_config(cores=4), [trace_factory() for _ in range(4)]
        ).run()
        assert max(shared.finish_times()) > alone.cores[0].finish_ns

    def test_deterministic(self):
        config = small_config()
        make = lambda: SyntheticTrace(
            profile_by_name("ycsb"), total_banks=config.total_banks,
            rows_per_bank=config.rows_per_bank, seed=3,
        )
        a = MemorySystem(config, [make()]).run()
        b = MemorySystem(config, [make()]).run()
        assert a.finish_times() == b.finish_times()


class TestDefenseIntegration:
    def test_para_adds_overhead(self):
        config = small_config(requests_per_core=500)
        make = lambda: FixedTrace(
            [TraceStep(bank=0, row=r % 64, column=0, gap_ns=2.0) for r in range(64)]
        )
        base = MemorySystem(config, [make()]).run().cores[0].finish_ns
        defended = MemorySystem(
            config, [make()],
            defense=Para(64, rows_per_bank=config.rows_per_bank, seed=0),
        ).run().cores[0].finish_ns
        assert defended > base * 1.2

    def test_overhead_grows_as_threshold_shrinks(self):
        config = small_config(requests_per_core=500)
        make = lambda: FixedTrace(
            [TraceStep(bank=0, row=r % 64, column=0, gap_ns=2.0) for r in range(64)]
        )
        times = {}
        for hc in (4096, 256, 64):
            defense = Para(hc, rows_per_bank=config.rows_per_bank, seed=0)
            times[hc] = MemorySystem(config, [make()], defense=defense).run().cores[0].finish_ns
        assert times[64] > times[256] > times[4096]

    def test_rrs_swaps_expensive(self):
        config = small_config(requests_per_core=400)
        make = lambda: FixedTrace(
            [TraceStep(bank=0, row=r, column=0, gap_ns=2.0) for r in (7, 9)]
        )
        base = MemorySystem(config, [make()]).run().cores[0].finish_ns
        defense = RandomizedRowSwap(64, rows_per_bank=config.rows_per_bank, seed=0)
        defended = MemorySystem(config, [make()], defense=defense).run()
        assert defended.cores[0].finish_ns > base * 1.5
        assert defense.stats.swaps > 0


class TestMetrics:
    def test_weighted_speedup_identity(self):
        assert weighted_speedup([1.0, 1.0], [1.0, 1.0]) == pytest.approx(2.0)

    def test_weighted_speedup_slowdown(self):
        assert weighted_speedup([1.0, 1.0], [2.0, 2.0]) == pytest.approx(1.0)

    def test_harmonic_speedup(self):
        assert harmonic_speedup([1.0, 1.0], [1.0, 1.0]) == pytest.approx(1.0)
        assert harmonic_speedup([1.0, 1.0], [2.0, 2.0]) == pytest.approx(0.5)

    def test_max_slowdown(self):
        assert max_slowdown([1.0, 1.0], [3.0, 1.5]) == pytest.approx(3.0)

    def test_normalization(self):
        a = compute_metrics([1.0] * 4, [2.0] * 4)
        b = compute_metrics([1.0] * 4, [4.0] * 4)
        normalized = b.normalized_to(a)
        assert normalized.weighted_speedup == pytest.approx(0.5)
        assert normalized.max_slowdown == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_speedup([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_speedup([0.0], [1.0])


class TestCache:
    def test_hits_after_fill(self):
        cache = SetAssociativeCache(capacity_bytes=64 * 64, ways=4)
        assert not cache.access(0)
        assert cache.access(0)

    def test_lru_eviction(self):
        cache = SetAssociativeCache(capacity_bytes=64 * 4, ways=4)  # one set
        for i in range(4):
            cache.access(i * 64 * 1)  # 4 lines, same set? n_sets=1
        cache.access(0)  # touch line 0
        cache.access(5 * 64)  # evicts LRU (line 1)
        assert cache.access(0)
        assert not cache.access(1 * 64)

    def test_stats(self):
        cache = SetAssociativeCache()
        cache.access(0)
        cache.access(0)
        assert cache.stats.accesses == 2
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(capacity_bytes=0)
        with pytest.raises(ValueError):
            SetAssociativeCache(capacity_bytes=100, ways=3)
