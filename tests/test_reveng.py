"""Tests for subarray and row-mapping reverse engineering."""

import numpy as np
import pytest

from repro.bender.infrastructure import TestPlatform
from repro.dram.mapping import ScramblingScheme
from repro.reveng.rowmapping import infer_scrambling_scheme, recover_physical_neighbors
from repro.reveng.subarray import SubarrayReverseEngineer

from tests.conftest import make_tiny_spec


@pytest.fixture
def platform():
    # 256 rows, 64-row subarrays: 4 subarrays at rows 0/64/128/192.
    return TestPlatform(make_tiny_spec(), seed=11)


class TestRowMappingRecovery:
    def test_identity_neighbors(self, platform):
        neighbors = recover_physical_neighbors(platform, 0, 100, search_radius=3)
        assert 99 in neighbors and 101 in neighbors

    def test_scrambled_neighbors(self):
        spec = make_tiny_spec(scrambling=ScramblingScheme.MIRROR)
        platform = TestPlatform(spec, seed=11)
        # Logical 4 sits at physical 3; its physical neighbours are
        # physical 2 (logical 2) and physical 4 (logical 3).
        neighbors = recover_physical_neighbors(platform, 0, 4, search_radius=4)
        assert 2 in neighbors and 3 in neighbors

    def test_boundary_row_single_neighbor(self, platform):
        # Physical row 64 is the first of subarray 1: only row 65 can
        # disturb it (row 63 is isolated by the sense-amp stripe).
        neighbors = recover_physical_neighbors(platform, 0, 64, search_radius=2)
        assert neighbors == [65]

    def test_infer_identity_scheme(self, platform):
        scheme = infer_scrambling_scheme(platform, 0, [33, 40], search_radius=3)
        assert scheme is ScramblingScheme.IDENTITY

    def test_infer_mirror_scheme(self):
        spec = make_tiny_spec(scrambling=ScramblingScheme.MIRROR)
        platform = TestPlatform(spec, seed=11)
        # Rows with low bits in {3,4,5,6} discriminate MIRROR.
        scheme = infer_scrambling_scheme(platform, 0, [35, 44], search_radius=4)
        assert scheme is ScramblingScheme.MIRROR


class TestSubarrayReverseEngineering:
    def test_boundary_candidates_found(self, platform):
        engineer = SubarrayReverseEngineer(platform, seed=1)
        boundaries = engineer.find_boundary_candidates(0)
        assert boundaries == [0, 64, 128, 192]

    def test_rowclone_validation_keeps_true_boundaries(self, platform):
        platform.device.rowclone_success_rate = 1.0
        engineer = SubarrayReverseEngineer(platform, seed=1)
        boundaries = engineer.validate_boundaries(0, [0, 64, 100, 128, 192])
        # 100 is interior: the clone from 99 to 100 succeeds and
        # invalidates it; true boundaries survive.
        assert boundaries == [0, 64, 128, 192]

    def test_full_inference_finds_four_subarrays(self, platform):
        platform.device.rowclone_success_rate = 1.0
        engineer = SubarrayReverseEngineer(platform, seed=1)
        inference = engineer.infer(0, k_values=range(2, 9))
        assert inference.inferred_k == 4
        assert inference.subarray_sizes() == [64, 64, 64, 64]

    def test_silhouette_peak_shape(self, platform):
        """Fig 8: score rises to a global max, then decreases."""
        platform.device.rowclone_success_rate = 1.0
        engineer = SubarrayReverseEngineer(platform, seed=1)
        inference = engineer.infer(0, k_values=range(2, 9))
        scores = inference.silhouette_by_k
        peak = inference.inferred_k
        ks = sorted(scores)
        after_peak = [scores[k] for k in ks if k >= peak]
        assert all(x >= y - 1e-9 for x, y in zip(after_peak, after_peak[1:]))

    def test_labels_are_contiguous_blocks(self, platform):
        platform.device.rowclone_success_rate = 1.0
        engineer = SubarrayReverseEngineer(platform, seed=1)
        inference = engineer.infer(0, k_values=range(2, 9))
        labels = inference.labels
        # Once the label changes it never returns (contiguous clusters).
        changes = np.count_nonzero(np.diff(labels))
        assert changes == inference.inferred_k - 1

    def test_subarray_of(self, platform):
        platform.device.rowclone_success_rate = 1.0
        engineer = SubarrayReverseEngineer(platform, seed=1)
        inference = engineer.infer(0, k_values=range(2, 9))
        assert inference.subarray_of(0) == inference.subarray_of(63)
        assert inference.subarray_of(63) != inference.subarray_of(64)

    def test_sampled_probing(self, platform):
        """Probing a subset of rows still finds the sampled boundaries."""
        engineer = SubarrayReverseEngineer(platform, seed=1)
        rows = list(range(0, 256, 1))[:130]  # covers boundaries 0, 64, 128
        boundaries = engineer.find_boundary_candidates(0, rows=rows)
        assert boundaries == [0, 64, 128]
