"""Tests for workload generation (suites, mixes, adversarial)."""

import numpy as np
import pytest

from repro.sim.config import SystemConfig
from repro.workloads.adversarial import HydraAdversarialTrace, RrsAdversarialTrace
from repro.workloads.mixes import (
    WorkloadMix,
    build_alone_trace,
    build_traces,
    generate_mixes,
    single_core_config,
)
from repro.workloads.suites import SUITE_NAMES, SUITE_PROFILES, profile_by_name
from repro.workloads.synthetic import SuiteProfile, SyntheticTrace


class TestSuiteProfiles:
    def test_five_suites(self):
        assert len(SUITE_PROFILES) == 5
        assert set(SUITE_NAMES) == {
            "spec06", "spec17", "tpc", "mediabench", "ycsb",
        }

    def test_lookup(self):
        assert profile_by_name("ycsb").name == "ycsb"
        with pytest.raises(KeyError):
            profile_by_name("linpack")

    def test_ycsb_most_skewed(self):
        zipfs = {name: p.zipf_exponent for name, p in SUITE_PROFILES.items()}
        assert zipfs["ycsb"] == max(zipfs.values())

    def test_mediabench_most_local(self):
        locs = {name: p.row_locality for name, p in SUITE_PROFILES.items()}
        assert locs["mediabench"] == max(locs.values())

    def test_validation(self):
        with pytest.raises(ValueError):
            SuiteProfile("x", row_locality=1.0, zipf_exponent=1, working_set_rows=1,
                         banks_used=1, write_ratio=0, gap_mean_ns=1)
        with pytest.raises(ValueError):
            SuiteProfile("x", row_locality=0.5, zipf_exponent=1, working_set_rows=0,
                         banks_used=1, write_ratio=0, gap_mean_ns=1)


class TestSyntheticTrace:
    def make(self, name="ycsb", seed=0):
        return SyntheticTrace(
            profile_by_name(name), total_banks=32, rows_per_bank=4096, seed=seed
        )

    def test_steps_within_bounds(self):
        trace = self.make()
        for _ in range(500):
            step = trace.next_step(0)
            assert 0 <= step.bank < 32
            assert 0 <= step.row < 4096
            assert step.gap_ns >= 0

    def test_deterministic(self):
        a = [self.make(seed=5).next_step(0) for _ in range(1)]
        t1, t2 = self.make(seed=5), self.make(seed=5)
        steps1 = [t1.next_step(0) for _ in range(100)]
        steps2 = [t2.next_step(0) for _ in range(100)]
        assert steps1 == steps2

    def test_row_bound_to_bank(self):
        """A row always appears in the same bank (page placement)."""
        trace = self.make()
        seen = {}
        for _ in range(3000):
            step = trace.next_step(0)
            if step.row in seen:
                assert seen[step.row] == step.bank
            seen[step.row] = step.bank

    def test_locality_produces_column_streaks(self):
        trace = self.make("mediabench")
        same_row = 0
        previous = trace.next_step(0)
        for _ in range(1000):
            step = trace.next_step(0)
            if step.row == previous.row and step.bank == previous.bank:
                same_row += 1
            previous = step
        assert same_row > 600  # locality 0.85

    def test_zipf_concentrates_rows(self):
        trace = self.make("ycsb")
        rows = [trace.next_step(0).row for _ in range(5000)]
        values, counts = np.unique(rows, return_counts=True)
        top_share = np.sort(counts)[::-1][:5].sum() / len(rows)
        assert top_share > 0.2

    def test_write_ratio_approximate(self):
        trace = self.make("tpc")
        writes = sum(trace.next_step(0).is_write for _ in range(4000))
        assert writes / 4000 == pytest.approx(0.35, abs=0.05)

    def test_chains_independent_state(self):
        trace = self.make()
        a = trace.next_step(0)
        b = trace.next_step(1)
        # Different chains can sit in different rows simultaneously.
        assert isinstance(a.row, int) and isinstance(b.row, int)


class TestMixes:
    def test_generate_120(self):
        mixes = generate_mixes()
        assert len(mixes) == 120
        assert all(len(m.suites) == 8 for m in mixes)

    def test_deterministic(self):
        a = generate_mixes(10, seed=3)
        b = generate_mixes(10, seed=3)
        assert [m.suites for m in a] == [m.suites for m in b]

    def test_all_suites_appear(self):
        mixes = generate_mixes(30, seed=0)
        used = {s for m in mixes for s in m.suites}
        assert used == set(SUITE_NAMES)

    def test_build_traces(self):
        config = SystemConfig()
        mix = generate_mixes(1, seed=0)[0]
        traces = build_traces(mix, config)
        assert len(traces) == config.cores

    def test_alone_trace_matches_mix_seed(self):
        config = SystemConfig()
        mix = generate_mixes(1, seed=0)[0]
        shared = build_traces(mix, config)[2]
        alone = build_alone_trace(mix, 2, single_core_config(config))[0]
        a = [shared.next_step(0) for _ in range(50)]
        b = [alone.next_step(0) for _ in range(50)]
        assert a == b

    def test_invalid_mix(self):
        with pytest.raises(ValueError):
            WorkloadMix(name="bad", suites=(), seed=0)
        with pytest.raises(KeyError):
            WorkloadMix(name="bad", suites=("nope",), seed=0)
        with pytest.raises(ValueError):
            generate_mixes(0)


class TestAdversarial:
    def test_hydra_pattern_cycles_distinct_groups(self):
        trace = HydraAdversarialTrace(n_rows=16, row_stride=128)
        rows = {trace.next_step(0).row for _ in range(16)}
        assert len(rows) == 16
        groups = {r // 128 for r in rows}
        assert len(groups) == 16

    def test_hydra_pattern_phase_offset(self):
        a = HydraAdversarialTrace(n_rows=16, row_stride=128, start_offset=0)
        b = HydraAdversarialTrace(n_rows=16, row_stride=128, start_offset=4)
        assert a.next_step(0).row != b.next_step(0).row

    def test_rrs_pattern_hammers_target(self):
        trace = RrsAdversarialTrace(target_row=7, scratch_row=9)
        rows = [trace.next_step(0).row for _ in range(10)]
        assert rows.count(7) == 5
        assert rows.count(9) == 5
        # Alternation means every access is a row miss.
        assert all(a != b for a, b in zip(rows, rows[1:]))
