"""The Experiment API: registry, ResultSet artifacts, renderers, CLI.

Covers the acceptance criteria of the API redesign:

* every harness module registers exactly one experiment and the
  runner's ``list`` subcommand enumerates them;
* ``--format text`` output is byte-identical to the pre-redesign
  ``render()`` tables (parity snapshots in ``tests/golden/text/``,
  captured at the pre-redesign commit; regenerate intentionally with
  ``pytest tests/test_experiment_api.py --update-golden``);
* ResultSet artifacts round-trip through their JSON form exactly;
* fig8/fig10 run through orchestrated tasks, and a warm-cache replay
  executes zero simulations;
* ``--paper-rows`` wires ``ModuleSpec.rows_per_bank`` into the
  characterization geometry (validated on a tiny synthetic module).
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.experiments import (
    ablation_bins,
    attack_manysided,
    fig3_ber_distribution,
    fig4_ber_location,
    fig5_hcfirst_distribution,
    fig6_hcfirst_location,
    fig7_rowpress,
    fig8_subarray_silhouette,
    fig9_spatial_features,
    fig10_aging,
    fig12_performance,
    fig13_adversarial,
    sec64_hardware_cost,
    table3_features,
    table5_modules,
)
from repro.experiments import api, render, runner
from repro.experiments.api import (
    Experiment,
    PlotSpec,
    ResultSet,
    ResultTable,
    TableBlock,
    TextBlock,
    all_experiments,
)
from repro.experiments.common import (
    _CHARACTERIZATION_CACHE,
    ExperimentScale,
    characterize_modules,
    scaled_profile,
)
from repro.faults.modules import MODULES, Manufacturer, ModuleSpec
from repro.orchestration import OrchestrationContext, ResultCache

TEXT_GOLDEN_DIR = Path(__file__).parent / "golden" / "text"

MPL_AVAILABLE = importlib.util.find_spec("matplotlib") is not None

# ----------------------------------------------------------------------
# Parity scales: small enough for the test suite, matching
# tests/golden/text/*.txt (captured at the pre-redesign commit).
# ----------------------------------------------------------------------

ONE_MODULE = ExperimentScale(
    rows_per_bank=1024, banks=(1, 4), modules=("H1", "M1", "S0"), seed=1
)
FEATURE_SCALE = ExperimentScale(rows_per_bank=2048, banks=(1, 4), seed=1)
FIG8_SCALE = ExperimentScale(
    rows_per_bank=512, banks=(0,), modules=("H1", "M1", "S0"), seed=2
)
FIG10_SCALE = ExperimentScale(rows_per_bank=2048, banks=(1,), seed=0)
PERF_SCALE = ExperimentScale(
    rows_per_bank=1024,
    banks=(1, 4),
    n_mixes=1,
    requests_per_core=1200,
    hc_first_values=(1024, 64),
    svard_profiles=("S0",),
    seed=3,
)
FIG13_SCALE = ExperimentScale(
    rows_per_bank=1024, banks=(1,), svard_profiles=("S0",),
    requests_per_core=6000, seed=3,
)
MANYSIDED_SCALE = ExperimentScale(
    rows_per_bank=1024, banks=(1,), svard_profiles=("S0",),
    requests_per_core=3000, seed=3,
)
ABLATION_SCALE = ExperimentScale(
    rows_per_bank=1024, banks=(1, 4), requests_per_core=1200, seed=3
)

#: name -> zero-argument callable returning the rich result at the
#: parity scale.
PARITY_RUNS = {
    "fig3": lambda: fig3_ber_distribution.run(ONE_MODULE),
    "fig4": lambda: fig4_ber_location.run(ONE_MODULE),
    "fig5": lambda: fig5_hcfirst_distribution.run(ONE_MODULE),
    "fig6": lambda: fig6_hcfirst_location.run(ONE_MODULE),
    "fig7": lambda: fig7_rowpress.run(ONE_MODULE),
    "fig8": lambda: fig8_subarray_silhouette.run(FIG8_SCALE),
    "fig9": lambda: fig9_spatial_features.run(FEATURE_SCALE),
    "fig10": lambda: fig10_aging.run(FIG10_SCALE),
    "fig12": lambda: fig12_performance.run(
        PERF_SCALE, defenses=("PARA", "RRS")
    ),
    "fig13": lambda: fig13_adversarial.run(FIG13_SCALE),
    "attack-manysided": lambda: attack_manysided.run(MANYSIDED_SCALE),
    "table3": lambda: table3_features.run(FEATURE_SCALE),
    "table5": lambda: table5_modules.run(ONE_MODULE),
    "sec64": lambda: sec64_hardware_cost.run(),
    "ablation-bins": lambda: ablation_bins.run(
        ABLATION_SCALE, defense="PARA", hc_first=64, profile_label="S0",
        bin_sweep=(1, 4, 16),
    ),
}


@pytest.fixture(scope="module")
def parity_result_sets():
    """Run every experiment once at its parity scale; cache per module."""
    results = {}
    for name, run in PARITY_RUNS.items():
        result = run()
        results[name] = (result, all_experiments()[name].result_set(result))
    return results


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_every_harness_module_registers_exactly_one(self):
        api.load_all()
        by_module = {}
        for experiment in all_experiments().values():
            by_module.setdefault(type(experiment).__module__, []).append(
                experiment.name
            )
        for module_name in api.harness_module_names():
            assert len(by_module.get(module_name, [])) == 1, (
                f"{module_name} must register exactly one experiment, "
                f"got {by_module.get(module_name, [])}"
            )

    def test_all_fifteen_present(self):
        assert sorted(all_experiments()) == sorted(PARITY_RUNS)

    def test_metadata_complete(self):
        for name, experiment in all_experiments().items():
            assert experiment.name == name
            assert experiment.description
            assert experiment.paper_ref

    def test_get_experiment_unknown(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            api.get_experiment("fig99")

    def test_register_rejects_duplicate_names(self):
        class Duplicate(Experiment):
            name = "fig3"

            def reduce(self, scale, outputs):
                return None

            def result_set(self, result):
                return ResultSet(experiment="fig3", title="")

        with pytest.raises(ValueError, match="already registered"):
            api.register(Duplicate)


# ----------------------------------------------------------------------
# Text parity and JSON round-trip
# ----------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(PARITY_RUNS))
def test_text_parity_with_pre_redesign_render(
    name, parity_result_sets, request
):
    """The text renderer reproduces the pre-redesign tables exactly."""
    result, result_set = parity_result_sets[name]
    rendered = render.get_renderer("text").render(result_set) + "\n"
    path = TEXT_GOLDEN_DIR / f"{name}.txt"
    if request.config.getoption("--update-golden"):
        TEXT_GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered)
        return
    assert rendered == path.read_text(), f"{name} text output drifted"
    # The rich result's render() is the same pipeline.
    assert result.render() + "\n" == rendered


@pytest.mark.parametrize("name", sorted(PARITY_RUNS))
def test_resultset_json_roundtrip(name, parity_result_sets):
    _, result_set = parity_result_sets[name]
    dumped = json.dumps(result_set.to_json_dict(), sort_keys=True)
    restored = ResultSet.from_json_dict(json.loads(dumped))
    assert restored == result_set
    # A second trip is a fixed point.
    assert json.dumps(restored.to_json_dict(), sort_keys=True) == dumped


class TestResultSetValidation:
    def test_rejects_non_scalar_cells(self):
        with pytest.raises(TypeError, match="JSON scalar"):
            ResultTable(name="t", headers=("a",), rows=((object(),),))

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="does not match"):
            ResultTable(name="t", headers=("a", "b"), rows=((1,),))

    def test_rejects_ragged_display_rows(self):
        with pytest.raises(ValueError, match="does not match"):
            TableBlock(headers=("a", "b"), rows=(("x",),))

    def test_rejects_duplicate_table_names(self):
        table = ResultTable(name="t", headers=("a",), rows=((1,),))
        with pytest.raises(ValueError, match="duplicate table"):
            ResultSet(experiment="x", title="x", tables=(table, table))

    def test_rejects_unknown_plot_kind(self):
        with pytest.raises(ValueError, match="unknown plot kind"):
            PlotSpec(name="p", kind="pie", table="t", x="a", y=("b",))

    def test_table_lookup_and_column(self):
        table = ResultTable(
            name="t", headers=("a", "b"), rows=((1, 2), (3, 4))
        )
        result_set = ResultSet(experiment="x", title="x", tables=(table,))
        assert result_set.table("t").column("b") == [2, 4]
        with pytest.raises(KeyError):
            result_set.table("missing")


# ----------------------------------------------------------------------
# Orchestrated fig8/fig10: warm cache replays zero simulations
# ----------------------------------------------------------------------


class TestOrchestratedSequentialHarnesses:
    def _contexts(self, tmp_path):
        cold = OrchestrationContext(jobs=1, cache=ResultCache(tmp_path))
        warm = OrchestrationContext(jobs=1, cache=ResultCache(tmp_path))
        return cold, warm

    def test_fig8_warm_cache_executes_nothing(self, tmp_path):
        scale = ExperimentScale(rows_per_bank=512, banks=(0,), seed=2)
        cold, warm = self._contexts(tmp_path)
        first = fig8_subarray_silhouette.run(
            scale, modules=("S0",), orchestration=cold
        )
        assert cold.stats.executed == 1 and cold.stats.hits == 0
        second = fig8_subarray_silhouette.run(
            scale, modules=("S0",), orchestration=warm
        )
        assert warm.stats.executed == 0
        assert warm.stats.hits == warm.stats.submitted == 1
        assert second.render() == first.render()
        assert second.inferences["S0"].inferred_k == first.inferences["S0"].inferred_k

    def test_fig8_modules_share_one_pool_submission(self, monkeypatch):
        """Per-module groups batch into one _execute -> --jobs fans out."""
        from repro.orchestration import serial_context

        scale = ExperimentScale(rows_per_bank=512, banks=(0,), seed=2)
        orch = serial_context()
        submissions = []
        original = orch._execute

        def spy(tasks):
            submissions.append(len(tasks))
            return original(tasks)

        monkeypatch.setattr(orch, "_execute", spy)
        fig8_subarray_silhouette.run(
            scale, modules=("S0", "S3"), orchestration=orch
        )
        assert submissions == [2]

    def test_distinct_fingerprint_groups_batch_together(self, monkeypatch):
        """Fig 7's three tAggOn sweeps execute as a single submission."""
        from repro.experiments.fig7_rowpress import Fig7Experiment
        from repro.orchestration import serial_context

        scale = ExperimentScale(
            rows_per_bank=256, banks=(1,), modules=("S0",), seed=11
        )
        orch = serial_context()
        submissions = []
        original = orch._execute

        def spy(tasks):
            submissions.append(len(tasks))
            return original(tasks)

        monkeypatch.setattr(orch, "_execute", spy)
        Fig7Experiment().run(scale, orch)
        # 3 tAggOn groups x 1 module x 1 bank, one batched submission.
        assert submissions == [3]

    def test_fig10_warm_cache_executes_nothing(self, tmp_path):
        scale = ExperimentScale(rows_per_bank=1024, banks=(1,), seed=0)
        cold, warm = self._contexts(tmp_path)
        first = fig10_aging.run(scale, orchestration=cold)
        assert cold.stats.executed == 1 and cold.stats.hits == 0
        second = fig10_aging.run(scale, orchestration=warm)
        assert warm.stats.executed == 0
        assert warm.stats.hits == warm.stats.submitted == 1
        assert second.render() == first.render()


# ----------------------------------------------------------------------
# --paper-rows: per-module real row counts
# ----------------------------------------------------------------------


def _tiny_spec(label: str) -> ModuleSpec:
    return ModuleSpec(
        label=label,
        manufacturer=Manufacturer.SAMSUNG,
        n_chips=8,
        density_gb=8,
        die_revision="B",
        organization="x8",
        freq_mts=3200,
        mfr_date=None,
        rows_per_bank=256,
        hc_min=8192,
        hc_avg=16384,
        hc_max=32768,
        ber_mean=5e-3,
        ber_cv_pct=4.0,
        n_ber_periods=2.0,
        subarray_rows=64,
    )


class TestPaperRows:
    def test_rows_for(self, monkeypatch):
        monkeypatch.setitem(MODULES, "T9", _tiny_spec("T9"))
        uniform = ExperimentScale(modules=("T9",), banks=(1,), seed=7)
        paper = ExperimentScale(
            modules=("T9",), banks=(1,), seed=7, paper_rows=True
        )
        assert uniform.rows_for("T9") == 2048
        assert paper.rows_for("T9") == 256

    def test_characterization_uses_module_rows(self, monkeypatch):
        monkeypatch.setitem(MODULES, "T9", _tiny_spec("T9"))
        scale = ExperimentScale(
            modules=("T9",), banks=(1,), seed=7, paper_rows=True
        )
        try:
            chars = characterize_modules(["T9"], scale)
            assert chars["T9"].banks[1].rows == 256
            profile = scaled_profile("T9", 64, scale)
            assert profile.rows_per_bank == 256
        finally:
            for key in [k for k in _CHARACTERIZATION_CACHE if k[0] == "T9"]:
                del _CHARACTERIZATION_CACHE[key]

    def test_runner_flag_parses(self):
        args = runner._parse_run_args(["fig5", "--paper-rows"])
        assert args.paper_rows is True
        args = runner._parse_run_args(["fig5"])
        assert args.paper_rows is None


# ----------------------------------------------------------------------
# Renderers
# ----------------------------------------------------------------------


class TestRenderers:
    def test_registry(self):
        assert set(render.renderer_names()) >= {"text", "json", "mpl"}
        with pytest.raises(KeyError, match="unknown format"):
            render.get_renderer("yaml")

    def test_text_write(self, tmp_path, parity_result_sets):
        _, result_set = parity_result_sets["sec64"]
        (path,) = render.get_renderer("text").write(result_set, tmp_path)
        assert path.name == "sec64.txt"
        assert path.read_text() == result_set.render_text() + "\n"

    def test_json_write_roundtrips(self, tmp_path, parity_result_sets):
        _, result_set = parity_result_sets["fig5"]
        (path,) = render.get_renderer("json").write(result_set, tmp_path)
        restored = ResultSet.from_json_dict(json.loads(path.read_text()))
        assert restored == result_set

    def test_mpl_render_is_file_based(self, parity_result_sets):
        _, result_set = parity_result_sets["fig5"]
        with pytest.raises(render.RendererUnavailable, match="image files"):
            render.get_renderer("mpl").render(result_set)

    @pytest.mark.skipif(MPL_AVAILABLE, reason="matplotlib installed")
    def test_mpl_unavailable_raises_actionable_error(
        self, tmp_path, parity_result_sets
    ):
        _, result_set = parity_result_sets["fig5"]
        with pytest.raises(render.RendererUnavailable, match="matplotlib"):
            render.get_renderer("mpl").write(result_set, tmp_path)

    @pytest.mark.skipif(not MPL_AVAILABLE, reason="matplotlib missing")
    def test_mpl_writes_figures(self, tmp_path, parity_result_sets):
        for name in ("fig5", "fig12", "fig13", "fig10"):
            _, result_set = parity_result_sets[name]
            paths = render.get_renderer("mpl").write(result_set, tmp_path)
            assert paths, f"{name} produced no figures"
            for path in paths:
                assert path.exists() and path.stat().st_size > 0

    def test_custom_renderer_plugs_in(self):
        class NullRenderer(render.Renderer):
            format_name = "null"
            suffix = ".null"

            def render(self, result_set):
                return result_set.experiment

        try:
            render.register_renderer(NullRenderer())
            assert render.get_renderer("null").render(
                ResultSet(experiment="x", title="x")
            ) == "x"
        finally:
            del render._RENDERERS["null"]

    def test_every_plot_spec_references_real_columns(self, parity_result_sets):
        for name, (_, result_set) in parity_result_sets.items():
            for spec in result_set.plots:
                table = result_set.table(spec.table)
                assert spec.x in table.headers, (name, spec.name)
                for y in spec.y:
                    assert y in table.headers, (name, spec.name)
                if spec.series is not None:
                    assert spec.series in table.headers, (name, spec.name)


# ----------------------------------------------------------------------
# Runner CLI
# ----------------------------------------------------------------------


class TestRunnerCli:
    def test_list_enumerates_all(self, capsys):
        assert runner.main(["list"]) == 0
        out = capsys.readouterr().out
        for name in PARITY_RUNS:
            assert name in out

    def test_list_json(self, capsys):
        assert runner.main(["list", "--format", "json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert sorted(listing) == sorted(PARITY_RUNS)
        assert listing["fig12"]["quick_overrides"]["n_mixes"] == 1

    def test_run_text_stdout(self, capsys):
        assert runner.main(["run", "sec64"]) == 0
        out = capsys.readouterr().out
        assert "Section 6.4: Svärd hardware cost" in out
        assert "=" * 72 in out

    def test_legacy_invocation_without_run_verb(self, capsys):
        assert runner.main(["sec64"]) == 0
        assert "Svärd hardware cost" in capsys.readouterr().out

    def test_run_json_out(self, tmp_path, capsys):
        assert runner.main(
            ["run", "sec64", "--format", "json", "--out", str(tmp_path)]
        ) == 0
        restored = ResultSet.from_json_dict(
            json.loads((tmp_path / "sec64.json").read_text())
        )
        assert restored.experiment == "sec64"
        assert restored.meta["paper_ref"] == "Section 6.4"
        assert restored.meta["scale"]["rows_per_bank"] == 2048

    def test_fig8_with_no_samsung_modules_fails_cleanly(self, capsys):
        code = runner.main(
            ["run", "fig8", "--modules", "H1", "--rows-per-bank", "512"]
        )
        assert code == 1
        assert "Samsung" in capsys.readouterr().err

    def test_failed_single_json_run_still_emits_a_document(self, capsys):
        code = runner.main(
            ["run", "fig8", "--modules", "H1", "--rows-per-bank", "512",
             "--format", "json"]
        )
        assert code == 1
        assert json.loads(capsys.readouterr().out) == []

    def test_multi_run_continues_past_failed_experiment(self, capsys):
        code = runner.main(
            ["run", "fig8", "sec64", "--modules", "H1",
             "--rows-per-bank", "512", "--format", "json"]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "Samsung" in captured.err
        assert "1 experiment(s) failed: fig8" in captured.err
        # The array shape follows the request (2 experiments), and
        # sec64 still ran and reached stdout despite fig8's failure.
        (document,) = json.loads(captured.out)
        assert document["experiment"] == "sec64"

    def test_top_level_help_mentions_both_subcommands(self, capsys):
        assert runner.main(["--help"]) == 0
        out = capsys.readouterr().out
        assert "list" in out and "run" in out

    def test_run_json_stdout_single_is_object(self, capsys):
        assert runner.main(["run", "sec64", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["experiment"] == "sec64"

    def test_run_json_stdout_multiple_is_parseable_array(self, capsys):
        assert runner.main(
            ["run", "sec64", "sec64", "--format", "json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert [d["experiment"] for d in document] == ["sec64", "sec64"]

    def test_unknown_experiment(self, capsys):
        assert runner.main(["run", "fig99"]) == 1
        assert "unknown experiment" in capsys.readouterr().err

    @pytest.mark.skipif(MPL_AVAILABLE, reason="matplotlib installed")
    def test_mpl_without_matplotlib_fails_cleanly(self, tmp_path, capsys):
        code = runner.main(
            ["run", "sec64", "--format", "mpl", "--out", str(tmp_path)]
        )
        assert code == 2
        assert "matplotlib" in capsys.readouterr().err

    def test_quick_overrides_respect_explicit_flags(self):
        experiment = all_experiments()["fig12"]
        base = ExperimentScale(n_mixes=7)
        quick = runner._scale_for(
            experiment, base, frozenset({"n_mixes"}), full=False
        )
        assert quick.n_mixes == 7  # explicit flag wins
        assert quick.svard_profiles == ("S0",)  # preset applies
        assert quick.hc_first_values == (4096, 256, 64)
        full = runner._scale_for(
            experiment, base, frozenset({"n_mixes"}), full=True
        )
        assert full == base

    def test_scale_flag_parsing(self):
        args = runner._parse_run_args(
            ["fig5", "--banks", "1,4", "--modules", "H1,S0",
             "--rows-per-bank", "512"]
        )
        assert args.banks == (1, 4)
        assert args.modules == ("H1", "S0")
        assert args.rows_per_bank == 512

    def test_malformed_banks_is_a_clean_parser_error(self, capsys):
        with pytest.raises(SystemExit):
            runner._parse_run_args(["fig5", "--banks", "a"])
        assert "comma-separated integers" in capsys.readouterr().err

    def test_duplicate_banks_and_modules_are_parser_errors(self, capsys):
        with pytest.raises(SystemExit):
            runner._parse_run_args(["fig5", "--banks", "1,1"])
        assert "duplicates" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            runner._parse_run_args(["fig5", "--modules", "S0,S0"])
        assert "duplicates" in capsys.readouterr().err

    def test_invalid_module_label_fails_cleanly(self, capsys):
        assert runner.main(["run", "sec64", "--modules", "BOGUS"]) == 1
        assert "invalid scale" in capsys.readouterr().err

    def test_invalid_rows_per_bank_fails_cleanly(self, capsys):
        assert runner.main(["run", "sec64", "--rows-per-bank", "8"]) == 1
        assert "invalid scale" in capsys.readouterr().err
