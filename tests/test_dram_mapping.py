"""Tests for row scrambling and MOP address mapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.mapping import (
    MopAddressMapper,
    RowScrambler,
    ScramblingScheme,
)


class TestRowScrambler:
    @pytest.mark.parametrize("scheme", list(ScramblingScheme))
    def test_bijective_over_small_bank(self, scheme):
        scrambler = RowScrambler(rows_per_bank=256, scheme=scheme)
        physical = {scrambler.to_physical(r) for r in range(256)}
        assert physical == set(range(256))

    @pytest.mark.parametrize("scheme", list(ScramblingScheme))
    def test_roundtrip(self, scheme):
        scrambler = RowScrambler(rows_per_bank=256, scheme=scheme)
        for row in range(256):
            assert scrambler.to_logical(scrambler.to_physical(row)) == row

    def test_identity_is_identity(self):
        scrambler = RowScrambler(rows_per_bank=64)
        assert all(scrambler.to_physical(r) == r for r in range(64))

    def test_mirror_swaps_34_and_56(self):
        scrambler = RowScrambler(rows_per_bank=64, scheme=ScramblingScheme.MIRROR)
        assert scrambler.to_physical(3) == 4
        assert scrambler.to_physical(4) == 3
        assert scrambler.to_physical(5) == 6
        assert scrambler.to_physical(6) == 5
        assert scrambler.to_physical(8 + 3) == 8 + 4

    def test_mirror_changes_adjacency(self):
        # The point of modelling scrambling: logical neighbours are not
        # physical neighbours, so naive hammering misses the victims.
        scrambler = RowScrambler(rows_per_bank=64, scheme=ScramblingScheme.MIRROR)
        below, above = scrambler.physical_neighbors(4)
        # Physical row of logical 4 is 3; physical neighbours 2 and 4
        # map back to logical 2 and logical 3.
        assert (below, above) == (2, 3)

    def test_repair_overrides(self):
        scrambler = RowScrambler(rows_per_bank=64, repairs=((5, 60),))
        assert scrambler.to_physical(5) == 60
        assert scrambler.to_logical(60) == 5

    def test_duplicate_repairs_rejected(self):
        with pytest.raises(ValueError):
            RowScrambler(rows_per_bank=64, repairs=((5, 60), (5, 61)))

    def test_out_of_range_repair_rejected(self):
        with pytest.raises(ValueError):
            RowScrambler(rows_per_bank=64, repairs=((5, 64),))

    def test_out_of_range_row_rejected(self):
        scrambler = RowScrambler(rows_per_bank=64)
        with pytest.raises(ValueError):
            scrambler.to_physical(64)

    def test_edge_neighbors_clamped(self):
        scrambler = RowScrambler(rows_per_bank=64)
        below, above = scrambler.physical_neighbors(0)
        assert below == 0 and above == 1


@given(
    scheme=st.sampled_from(list(ScramblingScheme)),
    row=st.integers(min_value=0, max_value=(1 << 16) - 1),
)
@settings(max_examples=100)
def test_property_scrambling_is_involution(scheme, row):
    scrambler = RowScrambler(rows_per_bank=1 << 16, scheme=scheme)
    assert scrambler.to_physical(scrambler.to_physical(row)) == row


class TestToPhysicalArray:
    @pytest.mark.parametrize("scheme", list(ScramblingScheme))
    def test_matches_scalar_mapping(self, scheme):
        scrambler = RowScrambler(
            rows_per_bank=256, scheme=scheme, repairs=((5, 60), (17, 250))
        )
        rows = np.arange(256)
        batched = scrambler.to_physical_array(rows)
        assert batched.tolist() == [
            scrambler.to_physical(int(r)) for r in rows
        ]

    def test_out_of_range_rejected(self):
        scrambler = RowScrambler(rows_per_bank=64)
        with pytest.raises(ValueError):
            scrambler.to_physical_array(np.asarray([0, 64]))
        with pytest.raises(ValueError):
            scrambler.to_physical_array(np.asarray([-1]))

    def test_empty_batch(self):
        scrambler = RowScrambler(rows_per_bank=64)
        assert scrambler.to_physical_array(np.asarray([], dtype=int)).size == 0


class TestMopAddressMapper:
    def test_consecutive_lines_stay_in_row_within_mop(self):
        mapper = MopAddressMapper()
        first = mapper.decode(0)
        second = mapper.decode(64)
        assert first.row == second.row
        assert first.flat_bank == second.flat_bank
        assert second.column == first.column + 1

    def test_mop_boundary_switches_bank_group(self):
        mapper = MopAddressMapper(mop_width=4)
        inside = mapper.decode(3 * 64)
        outside = mapper.decode(4 * 64)
        assert inside.bank_group == 0
        assert outside.bank_group == 1
        assert outside.row == inside.row

    def test_decode_is_injective_over_sample(self):
        mapper = MopAddressMapper(
            ranks=2, bank_groups=2, banks_per_group=2,
            rows_per_bank=64, columns_per_row=16,
        )
        seen = set()
        for line in range(0, mapper.capacity_bytes(), 64):
            addr = mapper.decode(line)
            key = (addr.rank, addr.bank_group, addr.bank, addr.row, addr.column)
            assert key not in seen
            seen.add(key)

    def test_capacity(self):
        mapper = MopAddressMapper()
        expected = 64 * 128 * 1 * 2 * 4 * 4 * 128 * 1024
        assert mapper.capacity_bytes() == expected

    def test_flat_bank(self):
        mapper = MopAddressMapper()
        addr = mapper.decode(4 * 64 * 4)  # past bank-group bits
        assert addr.flat_bank == addr.bank_group * 4 + addr.bank

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            MopAddressMapper(bank_groups=3)

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            MopAddressMapper().decode(-1)
