"""Integration tests: the per-figure experiment harnesses.

Each test runs an experiment at a reduced scale and asserts the
paper's corresponding observation/takeaway holds in the regenerated
data.  These are the repository's end-to-end checks.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig3_ber_distribution,
    fig4_ber_location,
    fig5_hcfirst_distribution,
    fig6_hcfirst_location,
    fig7_rowpress,
    fig8_subarray_silhouette,
    fig9_spatial_features,
    fig10_aging,
    fig12_performance,
    fig13_adversarial,
    sec64_hardware_cost,
    table3_features,
    table5_modules,
)
from repro.experiments.common import ExperimentScale
from repro.faults.modules import FEATURE_CORRELATED_MODULES

SMALL = ExperimentScale(rows_per_bank=1024, banks=(1, 4), seed=1)
# Feature analysis needs the default row count: address-bit semantics
# (and thus the calibrated F1 scores) depend on the bank size.
FEATURE_SCALE = ExperimentScale(rows_per_bank=2048, banks=(1, 4), seed=1)
ONE_MODULE = ExperimentScale(
    rows_per_bank=1024, banks=(1, 4), modules=("H1", "M1", "S0"), seed=1
)


class TestFig3:
    def test_observation_1_rows_vary(self):
        result = fig3_ber_distribution.run(ONE_MODULE)
        # M1 has the largest CV of the tested trio (8.08%).
        assert result.cv_pct["M1"] > result.cv_pct["H1"]
        assert result.cv_pct["M1"] == pytest.approx(8.08, rel=0.2)

    def test_observation_2_banks_agree(self):
        result = fig3_ber_distribution.run(ONE_MODULE)
        for label, ratio in result.bank_agreement.items():
            assert ratio < 1.05, f"{label} banks should agree"

    def test_observation_3_modules_differ(self):
        result = fig3_ber_distribution.run(ONE_MODULE)
        means = {
            label: result.boxes[(label, 1)].mean
            for label in ("H1", "M1", "S0")
        }
        assert means["H1"] > 10 * means["S0"] > 10 * means["M1"] / 10

    def test_render(self):
        result = fig3_ber_distribution.run(ONE_MODULE)
        text = result.render()
        assert "Fig 3" in text and "CV" in text


class TestFig4:
    def test_periodic_structure_visible(self):
        result = fig4_ber_location.run(ONE_MODULE)
        for label, curve in result.curves.items():
            assert curve.peak_to_trough() > 1.005
        # The high-CV module shows the strongest spatial structure.
        assert result.curves["M1"].peak_to_trough() > 1.2

    def test_m1_chunk_is_hotter(self):
        """Obsv 5: M1's rows at 3-12% relative location are weaker."""
        result = fig4_ber_location.run(ONE_MODULE, n_bins=50)
        curve = result.curves["M1"]
        chunk = curve.mean[(curve.centers >= 0.03) & (curve.centers < 0.12)]
        rest = curve.mean[curve.centers >= 0.2]
        assert chunk.mean() > rest.mean() * 1.1

    def test_render(self):
        assert "Fig 4" in fig4_ber_location.run(ONE_MODULE).render()


class TestFig5:
    def test_minima_match_table5(self):
        result = fig5_hcfirst_distribution.run(ONE_MODULE)
        for label in ONE_MODULE.modules:
            measured = result.minima[label]
            paper = result.paper_minima[label]
            # Small scaled banks may miss the rare weakest rows by one
            # grid step; they must never be weaker than the paper min.
            assert measured >= paper
            assert measured <= paper * 2.1

    def test_histogram_normalized(self):
        result = fig5_hcfirst_distribution.run(ONE_MODULE)
        for hist in result.histograms.values():
            assert sum(hist.values()) == pytest.approx(1.0)

    def test_render(self):
        assert "Fig 5" in fig5_hcfirst_distribution.run(ONE_MODULE).render()


class TestFig6:
    def test_uncorrelated_modules_irregular(self):
        result = fig6_hcfirst_location.run(ONE_MODULE)
        assert abs(result.autocorrelation["H1"]) < 0.15
        assert abs(result.autocorrelation["M1"]) < 0.15

    def test_observation_8_large_spread(self):
        result = fig6_hcfirst_location.run(ONE_MODULE)
        assert result.spread["H1"] > 4.0

    def test_render(self):
        assert "Fig 6" in fig6_hcfirst_location.run(ONE_MODULE).render()


class TestFig7:
    def test_observation_10_hcfirst_drops(self):
        result = fig7_rowpress.run(ONE_MODULE)
        for mfr in ("H", "M", "S"):
            means = [result.boxes[(mfr, t)].mean for t in (36.0, 500.0, 2000.0)]
            assert means[0] > means[1] > means[2]

    def test_order_of_magnitude_reduction(self):
        result = fig7_rowpress.run(ONE_MODULE)
        for mfr in ("H", "M", "S"):
            assert 4.0 < result.reduction_factor(mfr) < 20.0

    def test_observation_11_variation_remains(self):
        result = fig7_rowpress.run(ONE_MODULE)
        assert result.cv_pct[("H1", 2000.0)] > 10.0


class TestFig8:
    def test_inferred_counts_match_geometry(self):
        scale = ExperimentScale(rows_per_bank=512, banks=(0,), seed=2)
        result = fig8_subarray_silhouette.run(scale, modules=("S0", "S3"))
        for label, inference in result.inferences.items():
            assert inference.inferred_k == result.true_subarrays[label]

    def test_silhouette_decreases_past_peak(self):
        scale = ExperimentScale(rows_per_bank=512, banks=(0,), seed=2)
        result = fig8_subarray_silhouette.run(scale, modules=("S0",))
        scores = result.inferences["S0"].silhouette_by_k
        peak = result.inferences["S0"].inferred_k
        tail = [scores[k] for k in sorted(scores) if k >= peak]
        assert all(a >= b - 1e-9 for a, b in zip(tail, tail[1:]))


class TestFig9:
    def test_takeaway_6(self):
        result = fig9_spatial_features.run(FEATURE_SCALE)
        strong = result.modules_with_strong_features()
        assert set(strong) == set(FEATURE_CORRELATED_MODULES)

    def test_no_feature_above_08(self):
        result = fig9_spatial_features.run(FEATURE_SCALE)
        assert result.max_f1() <= 0.80

    def test_render(self):
        assert "Fig 9" in fig9_spatial_features.run(FEATURE_SCALE).render()


class TestFig10:
    def test_observations_12_13(self):
        scale = ExperimentScale(rows_per_bank=8192, banks=(1,), seed=0)
        result = fig10_aging.run(scale)
        assert result.study.weakened_fraction() > 0
        transitions = result.study.transitions()
        for (before, after), _ in transitions.items():
            assert after <= before
        strongest = 128 * 1024
        if (strongest, strongest) in transitions:
            assert transitions[(strongest, strongest)] == pytest.approx(1.0)

    def test_render(self):
        scale = ExperimentScale(rows_per_bank=2048, banks=(1,), seed=0)
        assert "Fig 10" in fig10_aging.run(scale).render()


TINY_PERF = ExperimentScale(
    rows_per_bank=1024,
    banks=(1, 4),
    n_mixes=1,
    requests_per_core=1200,
    hc_first_values=(1024, 64),
    svard_profiles=("S0",),
    seed=3,
)


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_performance.run(TINY_PERF, defenses=("PARA", "RRS"))

    def test_overhead_grows_at_low_thresholds(self, result):
        for defense in ("PARA", "RRS"):
            high = result.weighted_speedup(defense, "No Svärd", 1024)
            low = result.weighted_speedup(defense, "No Svärd", 64)
            assert low < high

    def test_takeaway_8_svard_improves(self, result):
        for defense in ("PARA", "RRS"):
            assert result.improvement(defense, "Svärd-S0", 64) > 1.1

    def test_metrics_consistent(self, result):
        for key, metrics in result.metrics.items():
            assert metrics.weighted_speedup > 0
            assert metrics.harmonic_speedup > 0
            assert metrics.max_slowdown > 0

    def test_render(self, result):
        text = result.render()
        assert "weighted_speedup" in text and "max_slowdown" in text


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        scale = ExperimentScale(
            rows_per_bank=1024, banks=(1,), svard_profiles=("S0",),
            requests_per_core=6000, seed=3,
        )
        return fig13_adversarial.run(scale)

    def test_adversaries_cause_slowdown(self, result):
        assert result.raw_slowdown[("Hydra", "No Svärd")] > 1.2
        assert result.raw_slowdown[("RRS", "No Svärd")] > 2.0

    def test_takeaway_9_svard_mitigates(self, result):
        assert result.normalized_slowdown[("Hydra", "Svärd-S0")] < 1.0
        assert result.normalized_slowdown[("RRS", "Svärd-S0")] < 1.0

    def test_render(self, result):
        assert "Fig 13" in result.render()


class TestTables:
    def test_table3_matches_paper_modules(self):
        result = table3_features.run(FEATURE_SCALE)
        with_strong = {label for label, f in result.strong.items() if f}
        assert with_strong == set(FEATURE_CORRELATED_MODULES)
        for label in with_strong:
            assert 0.65 < result.average_f1(label) < 0.80

    def test_table5_registry(self):
        result = table5_modules.run(ONE_MODULE)
        row = result.rows["S0"]
        assert row.vendor == "Samsung"
        assert row.paper_min == 32 * 1024
        assert row.measured_min >= row.paper_min
        assert row.measured_avg == pytest.approx(row.paper_avg, rel=0.12)

    def test_sec64(self):
        result = sec64_hardware_cost.run()
        assert "0.86%" in result.render()
        assert result.model.cpu_area_overhead_fraction() == pytest.approx(
            0.0086, rel=0.02
        )
