"""Tests for the characterization pipeline (Algorithm 1)."""

import numpy as np
import pytest

from repro.characterization.aging_study import AgingStudy
from repro.characterization.metrics import (
    bank_agreement_ratio,
    box_stats,
    coefficient_of_variation_pct,
    hc_first_histogram,
    normalize_to_minimum,
)
from repro.characterization.rowpress import T_AGG_ON_SWEEP_NS, RowPressStudy
from repro.characterization.runner import (
    CharacterizationConfig,
    CharacterizationRunner,
)
from repro.faults.datapatterns import WCDP_CANDIDATES
from repro.faults.modules import module_by_label
from repro.faults.variation import HC_GRID

from tests.conftest import make_tiny_spec


class TestMetrics:
    def test_box_stats_of_known_distribution(self):
        values = np.arange(1, 101, dtype=float)
        stats = box_stats(values)
        assert stats.median == pytest.approx(50.5)
        assert stats.mean == pytest.approx(50.5)
        assert stats.q1 < stats.median < stats.q3
        assert stats.minimum == 1 and stats.maximum == 100
        assert stats.count == 100

    def test_box_whiskers_within_range(self):
        rng = np.random.default_rng(0)
        values = rng.normal(10, 2, size=1000)
        stats = box_stats(values)
        assert stats.whisker_low >= stats.q1 - 1.5 * stats.iqr
        assert stats.whisker_high <= stats.q3 + 1.5 * stats.iqr

    def test_cv(self):
        values = np.array([9.0, 10.0, 11.0])
        expected = 100.0 * values.std() / values.mean()
        assert coefficient_of_variation_pct(values) == pytest.approx(expected)

    def test_cv_rejects_zero_mean(self):
        with pytest.raises(ValueError):
            coefficient_of_variation_pct(np.array([-1.0, 1.0]))

    def test_histogram_sums_to_one(self):
        measured = np.array([1024, 1024, 2048, 4096])
        hist = hc_first_histogram(measured, [1024, 2048, 4096])
        assert sum(hist.values()) == pytest.approx(1.0)
        assert hist[1024] == pytest.approx(0.5)

    def test_normalize_to_minimum(self):
        out = normalize_to_minimum(np.array([2.0, 4.0, 8.0]))
        assert list(out) == [1.0, 2.0, 4.0]
        with pytest.raises(ValueError):
            normalize_to_minimum(np.array([0.0, 1.0]))

    def test_bank_agreement(self):
        assert bank_agreement_ratio({1: 1.0, 4: 1.02}) == pytest.approx(1.02)
        with pytest.raises(ValueError):
            bank_agreement_ratio({})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            box_stats(np.array([]))
        with pytest.raises(ValueError):
            hc_first_histogram(np.array([]), [1024])


def small_config(**overrides):
    defaults = dict(rows_per_bank=512, banks=(1, 4), iterations=1, seed=2)
    defaults.update(overrides)
    return CharacterizationConfig(**defaults)


class TestAnalyticRunner:
    def test_full_run_structure(self):
        spec = module_by_label("S0")
        runner = CharacterizationRunner(spec, small_config())
        result = runner.run()
        assert set(result.banks) == {1, 4}
        profile = result.banks[1]
        assert profile.rows == 512
        assert set(np.unique(profile.measured_hc_first)).issubset(set(HC_GRID))

    def test_measured_matches_ground_truth_snapping(self):
        spec = module_by_label("S0")
        runner = CharacterizationRunner(spec, small_config(banks=(1,)))
        profile = runner.characterize_bank(1)
        truth = runner.model.field(1).measured_hc_first()
        assert np.array_equal(profile.measured_hc_first, truth)

    def test_wcdp_matches_model(self):
        spec = module_by_label("S0")
        runner = CharacterizationRunner(spec, small_config(banks=(1,)))
        profile = runner.characterize_bank(1)
        truth = runner.model.field(1).wcdp_index
        assert np.array_equal(profile.wcdp_index, truth)

    def test_ber_at_128k_positive(self):
        spec = module_by_label("M0")
        runner = CharacterizationRunner(spec, small_config(banks=(1,)))
        profile = runner.characterize_bank(1)
        # Every M0 row flips by 128K (hc_max = 40K << 128K).
        assert np.all(profile.ber_at_128k > 0)

    def test_iteration_worst_case_grows_ber(self):
        spec = module_by_label("M0")
        one = CharacterizationRunner(
            spec, small_config(banks=(1,), iterations=1)
        ).characterize_bank(1)
        ten = CharacterizationRunner(
            spec, small_config(banks=(1,), iterations=10)
        ).characterize_bank(1)
        assert ten.ber_at_128k.mean() >= one.ber_at_128k.mean()
        # ... but only by the small iteration-variation factor.
        assert ten.ber_at_128k.mean() <= one.ber_at_128k.mean() * 1.15

    def test_banks_similar_rows_vary(self):
        """Takeaways 1/3: variation across rows >> across banks."""
        spec = module_by_label("S1")
        result = CharacterizationRunner(
            spec, small_config(rows_per_bank=1024, banks=(1, 4, 10, 15))
        ).run()
        ratio = bank_agreement_ratio(result.per_bank_mean_ber())
        assert ratio < 1.05
        within = coefficient_of_variation_pct(result.banks[1].ber_at_128k)
        assert within > 1.0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            CharacterizationConfig(mode="magic")
        with pytest.raises(ValueError):
            CharacterizationConfig(iterations=0)
        with pytest.raises(ValueError):
            CharacterizationConfig(banks=())


class TestPlatformRunnerEquivalence:
    def test_platform_and_analytic_agree(self):
        """The command-faithful path and the closed form must agree on
        measured HC_first and on BER@max for a sample of rows."""
        spec = make_tiny_spec()
        grid = (16, 24, 32, 48, 64, 96, 160)
        rows = [10, 33, 40]
        analytic = CharacterizationRunner(
            spec,
            CharacterizationConfig(
                rows_per_bank=128, banks=(0,), hc_grid=grid, seed=5,
                mode="analytic",
            ),
        ).characterize_bank(0)
        platform = CharacterizationRunner(
            spec,
            CharacterizationConfig(
                rows_per_bank=128, banks=(0,), hc_grid=grid, seed=5,
                mode="platform",
            ),
        ).characterize_bank(0, rows=rows)
        # Subset runs size their arrays to the measured rows and carry
        # the bank row index of each slot.
        assert platform.rows == len(rows)
        assert list(platform.row_indices) == rows
        assert platform.bank_rows == 128
        hc_max = max(grid)
        for slot, row in enumerate(rows):
            assert (
                platform.measured_hc_first[slot]
                == analytic.measured_hc_first[row]
            )
            assert platform.ber_by_hc[hc_max][slot] == pytest.approx(
                analytic.ber_by_hc[hc_max][row], abs=2e-5
            )


class TestRowPressStudy:
    def test_hc_first_decreases_with_t_agg_on(self):
        """Obsv 10: longer tAggOn means earlier bitflips."""
        spec = module_by_label("H2")
        study = RowPressStudy(spec, small_config(banks=(1,)))
        results = study.run()
        boxes = RowPressStudy.hc_first_boxes(results)
        means = [boxes[t].mean for t in T_AGG_ON_SWEEP_NS]
        assert means[0] > means[1] > means[2]

    def test_variation_remains_at_long_t_agg_on(self):
        """Obsv 11: large CV even at tAggOn = 2 us."""
        spec = module_by_label("H2")
        study = RowPressStudy(spec, small_config(banks=(1,)))
        results = study.run()
        cvs = RowPressStudy.hc_first_cv_pct(results)
        assert cvs[2000.0] > 10.0


class TestAgingStudy:
    def test_aging_only_weakens(self):
        spec = module_by_label("H3")
        study = AgingStudy(spec, small_config(rows_per_bank=4096, banks=(1,)))
        result = study.run(bank=1)
        assert np.all(result.after <= result.before)

    def test_some_rows_weaken(self):
        spec = module_by_label("H3")
        study = AgingStudy(spec, small_config(rows_per_bank=8192, banks=(1,)))
        result = study.run(bank=1)
        assert result.weakened_fraction() > 0

    def test_transitions_normalized(self):
        spec = module_by_label("H3")
        study = AgingStudy(spec, small_config(rows_per_bank=4096, banks=(1,)))
        result = study.run(bank=1)
        transitions = result.transitions()
        from collections import defaultdict

        per_before = defaultdict(float)
        for (b, _), fraction in transitions.items():
            per_before[b] += fraction
        for total in per_before.values():
            assert total == pytest.approx(1.0)

    def test_strongest_rows_stable(self):
        spec = module_by_label("H3")
        study = AgingStudy(spec, small_config(rows_per_bank=8192, banks=(1,)))
        result = study.run(bank=1)
        strongest = result.before == result.before.max()
        if result.before.max() == 128 * 1024:
            assert np.all(result.after[strongest] == result.before[strongest])
