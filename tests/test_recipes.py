"""The declarative recipe subsystem: registry, manifests, CLI."""

import json

import pytest

from repro.experiments.common import ExperimentScale
from repro.experiments.recipes import (
    DEFENSE_GRID_GENERATIONS,
    FIG7_TAGGON_SWEEP,
    FIG12_PAPER_GRID,
    Recipe,
    RecipeError,
    all_recipes,
    get_recipe,
)
from repro.experiments import runner


class TestCheckedInRecipes:
    def test_registry_contains_the_paper_grids(self):
        recipes = all_recipes()
        assert "fig12-paper-grid" in recipes
        assert "fig7-taggon-sweep" in recipes
        for recipe in recipes.values():
            recipe.validate_experiments()  # names resolve in the registry

    def test_fig12_paper_grid_is_paper_scale(self):
        scale = FIG12_PAPER_GRID.scale(seed=0)
        assert scale.n_mixes == 120
        # The paper's seven HC_first points survive untouched.
        assert scale.hc_first_values == (4096, 2048, 1024, 512, 256, 128, 64)
        assert scale.svard_profiles == ("H1", "M0", "S0")

    def test_fig7_sweep_extends_the_paper_points(self):
        scale = FIG7_TAGGON_SWEEP.scale(seed=0)
        assert len(scale.t_agg_on_sweep_ns) == 8
        # The paper's three points are a subset, so Fig 7 proper can be
        # read straight off this sweep.
        assert {36.0, 500.0, 2000.0} <= set(scale.t_agg_on_sweep_ns)

    def test_smoke_scales_are_tiny(self):
        for recipe in all_recipes().values():
            smoke = recipe.scale(seed=0, smoke=True)
            assert smoke.rows_per_bank <= 512
            assert smoke.n_mixes <= 1 or smoke.n_mixes == smoke.n_mixes

    def test_generation_grid_sweeps_the_three_devices(self):
        assert "defense-grid-generations" in all_recipes()
        assert DEFENSE_GRID_GENERATIONS.devices == (
            "DDR4-3200", "LPDDR4-3200", "DDR5-4800",
        )
        runs = DEFENSE_GRID_GENERATIONS.runs()
        assert [scale.device for _, _, scale in runs] == [
            "DDR4-3200", "LPDDR4-3200", "DDR5-4800",
        ]

    def test_runs_matrix_crosses_devices_with_seeds(self):
        recipe = Recipe(
            name="x", version=1, description="", experiments=("fig12",),
            seeds=(0, 1), devices=("DDR4-3200", "DDR5-4800"),
        )
        runs = recipe.runs()
        assert [(seed, scale.device) for _, seed, scale in runs] == [
            (0, "DDR4-3200"), (0, "DDR5-4800"),
            (1, "DDR4-3200"), (1, "DDR5-4800"),
        ]

    def test_runs_matrix_applies_seeds(self):
        recipe = Recipe(
            name="x", version=1, description="", experiments=("fig12",),
            seeds=(3, 4),
        )
        runs = recipe.runs()
        assert [(name, seed) for name, seed, _ in runs] == [
            ("fig12", 3), ("fig12", 4),
        ]
        assert all(scale.seed == seed for _, seed, scale in runs)


class TestRecipeValidation:
    def test_unknown_scale_field_rejected(self):
        with pytest.raises(RecipeError, match="unknown ExperimentScale"):
            Recipe(name="x", version=1, description="",
                   experiments=("fig12",), overrides={"warp_factor": 9})

    def test_unknown_experiment_rejected_at_validation(self):
        recipe = Recipe(name="x", version=1, description="",
                        experiments=("fig99",))
        with pytest.raises(RecipeError, match="unknown experiment"):
            recipe.validate_experiments()

    def test_empty_seed_matrix_rejected(self):
        with pytest.raises(RecipeError, match="seed"):
            Recipe(name="x", version=1, description="",
                   experiments=("fig12",), seeds=())

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(RecipeError, match="duplicate seeds"):
            Recipe(name="x", version=1, description="",
                   experiments=("fig12",), seeds=(1, 1))

    def test_unknown_device_rejected(self):
        with pytest.raises(RecipeError, match="unknown device"):
            Recipe(name="x", version=1, description="",
                   experiments=("fig12",), devices=("DDR3-1600",))

    def test_duplicate_devices_rejected(self):
        with pytest.raises(RecipeError, match="duplicate devices"):
            Recipe(name="x", version=1, description="",
                   experiments=("fig12",),
                   devices=("DDR4-3200", "DDR4-3200"))

    def test_invalid_override_value_surfaces_cleanly(self):
        recipe = Recipe(name="x", version=1, description="",
                        experiments=("fig12",),
                        overrides={"rows_per_bank": 8})
        with pytest.raises(RecipeError, match="invalid scale"):
            recipe.scale(seed=0)

    def test_wrong_typed_override_surfaces_cleanly(self):
        """A JSON-string-where-a-number-belongs manifest mistake must
        become a one-line RecipeError, not a TypeError traceback."""
        recipe = Recipe(name="x", version=1, description="",
                        experiments=("fig12",),
                        overrides={"rows_per_bank": "4096"})
        with pytest.raises(RecipeError, match="invalid scale"):
            recipe.scale(seed=0)


class TestManifestRoundTrip:
    def test_round_trip_exact(self):
        for recipe in all_recipes().values():
            assert Recipe.from_manifest(recipe.to_manifest()) == recipe

    def test_round_trip_freezes_json_lists(self):
        manifest = FIG7_TAGGON_SWEEP.to_manifest()
        reloaded = Recipe.from_manifest(json.loads(json.dumps(manifest)))
        assert reloaded == FIG7_TAGGON_SWEEP
        assert isinstance(reloaded.overrides["t_agg_on_sweep_ns"], tuple)

    def test_unrecognized_manifest_rejected(self):
        with pytest.raises(RecipeError, match="manifest"):
            Recipe.from_manifest({"format": 99})

    def test_get_recipe_loads_manifest_files(self, tmp_path):
        path = tmp_path / "custom.json"
        path.write_text(json.dumps({
            "format": 1,
            "name": "custom",
            "version": 2,
            "description": "ad-hoc grid",
            "experiments": ["sec64"],
            "overrides": {},
            "seeds": [7],
        }))
        recipe = get_recipe(path)
        assert recipe.name == "custom"
        assert recipe.version == 2
        assert recipe.seeds == (7,)

    def test_get_recipe_unknown_name(self):
        with pytest.raises(RecipeError, match="unknown recipe"):
            get_recipe("no-such-recipe")


class TestRecipeCli:
    def test_recipe_list_json(self, capsys):
        assert runner.main(["recipe", "list", "--format", "json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert listing["fig12-paper-grid"]["overrides"]["n_mixes"] == 120
        assert listing["fig7-taggon-sweep"]["version"] == 1

    def test_recipe_show(self, capsys):
        assert runner.main(["recipe", "show", "fig12-paper-grid"]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["name"] == "fig12-paper-grid"
        assert manifest["format"] == 1

    def test_recipe_show_unknown(self, capsys):
        assert runner.main(["recipe", "show", "nope"]) == 1
        assert "unknown recipe" in capsys.readouterr().err

    def test_recipe_run_writes_seed_partitioned_artifacts(
        self, tmp_path, capsys
    ):
        """A cheap two-seed recipe lands one artifact tree per seed,
        each stamped with recipe provenance."""
        manifest = tmp_path / "cost.json"
        manifest.write_text(json.dumps({
            "format": 1,
            "name": "cost-check",
            "version": 3,
            "description": "hardware cost at two seeds",
            "experiments": ["sec64"],
            "seeds": [0, 1],
        }))
        out_dir = tmp_path / "out"
        code = runner.main([
            "recipe", "run", str(manifest),
            "--no-cache", "--format", "json", "--out", str(out_dir),
        ])
        assert code == 0
        for seed in (0, 1):
            data = json.loads((out_dir / f"seed{seed}" / "sec64.json").read_text())
            assert data["meta"]["recipe"] == {
                "name": "cost-check", "version": 3,
                "seed": seed, "smoke": False,
            }
            assert data["meta"]["scale"]["seed"] == seed

    def test_recipe_run_unknown(self, capsys):
        assert runner.main(["recipe", "run", "nope"]) == 1
        assert "unknown recipe" in capsys.readouterr().err

    def test_recipe_run_rejects_queue_with_no_cache(self, capsys):
        with pytest.raises(SystemExit):
            runner.main([
                "recipe", "run", "fig12-paper-grid",
                "--backend", "queue", "--no-cache",
            ])

    def test_jobs_rejected_on_backends_it_cannot_affect(self, capsys):
        """--jobs with the serial/queue backend would silently run
        single-threaded; refuse it instead."""
        for backend in ("serial", "queue"):
            with pytest.raises(SystemExit):
                runner.main([
                    "run", "fig12", "--backend", backend, "--jobs", "4",
                ])

    def test_t_agg_on_cli_flag(self, tmp_path, capsys):
        """--t-agg-on feeds ExperimentScale.t_agg_on_sweep_ns (fig7's
        sweep points now come from the scale, not a constant)."""
        code = runner.main([
            "run", "fig7",
            "--rows-per-bank", "256", "--banks", "1", "--modules", "S0",
            "--t-agg-on", "36,2000",
            "--no-cache", "--format", "json",
        ])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert document["meta"]["scale"]["t_agg_on_sweep_ns"] == [36.0, 2000.0]
        t_values = {
            row[1] for row in document["tables"][0]["rows"]
        }
        assert t_values == {36.0, 2000.0}
