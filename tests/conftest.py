"""Shared fixtures: a small, fast synthetic module for device tests."""

import pytest

from repro.dram.geometry import DramGeometry
from repro.dram.mapping import RowScrambler, ScramblingScheme
from repro.faults.modules import Manufacturer, ModuleSpec


def make_tiny_spec(**overrides) -> ModuleSpec:
    """A synthetic module with tiny HC_first values for fast tests.

    HC_first between 20 and 80 hammer pairs means a few hundred
    command-level activations are enough to induce bitflips.
    """
    defaults = dict(
        label="T0",
        manufacturer=Manufacturer.SAMSUNG,
        n_chips=8,
        density_gb=8,
        die_revision="B",
        organization="x8",
        freq_mts=3200,
        mfr_date="01-24",
        rows_per_bank=256,
        hc_min=20,
        hc_avg=40,
        hc_max=80,
        ber_mean=5e-3,
        ber_cv_pct=4.0,
        n_ber_periods=2.0,
        subarray_rows=64,
        scrambling=ScramblingScheme.IDENTITY,
    )
    defaults.update(overrides)
    return ModuleSpec(**defaults)


@pytest.fixture
def tiny_spec():
    return make_tiny_spec()


@pytest.fixture
def tiny_geometry():
    return DramGeometry(rows_per_bank=256, subarray_rows=64, columns_per_row=16)
