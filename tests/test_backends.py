"""Execution-backend equivalence, queue/lease mechanics, and
concurrent-cache-writer safety.

The contract: every backend produces bit-identical results for the
same task batch (tasks are pure), the file-based job queue never loses
or duplicates a task even across worker crashes, and two processes
hammering one ``.repro_cache/`` directory can never corrupt an entry.
"""

import multiprocessing
import os
import pickle
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments import fig12_performance
from repro.experiments.common import ExperimentScale
from repro.orchestration import (
    PROFILE_FIELDS,
    BackendError,
    ChunkEnvelope,
    JobQueue,
    OrchestrationContext,
    ProcessBackend,
    QueueBackend,
    QueueTaskFailed,
    QueueWorker,
    ResultCache,
    SerialBackend,
    SetupCache,
    TaskEnvelope,
    WorkerHeartbeat,
    WorkerStats,
    chunk_queue_key,
    create_backend,
    default_backend,
    default_queue_dir,
    envelope_from_payload,
    execute_task_profiled,
    make_task,
    profile_from_provenance,
)
from repro.orchestration.backends.process import auto_pool_chunksize
from repro.orchestration.backends.queue import auto_chunk_size

#: Matches tests/test_orchestration.py's TINY fig12 grid (3 tasks).
TINY = ExperimentScale(
    rows_per_bank=1024,
    banks=(1,),
    n_mixes=1,
    requests_per_core=600,
    hc_first_values=(64,),
    svard_profiles=("S0",),
    seed=5,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _double(task):
    return task.params * 2


def _boom(task):
    raise RuntimeError(f"task {task.key} exploded")


def _interrupt(task):
    raise KeyboardInterrupt


def _fig12(scale, orchestration=None):
    return fig12_performance.run(
        scale, defenses=("PARA",), orchestration=orchestration
    )


def _queue_context(tmp_path, **backend_kwargs):
    cache = ResultCache(tmp_path / "cache")
    backend = QueueBackend(
        default_queue_dir(cache.directory), **backend_kwargs
    )
    return OrchestrationContext(cache=cache, backend=backend), backend


# ----------------------------------------------------------------------
# Backend equivalence: serial == process == queue, bit-identical.
# ----------------------------------------------------------------------


class TestBackendEquivalence:
    def test_all_backends_bit_identical(self, tmp_path):
        serial = _fig12(TINY)

        process_ctx = OrchestrationContext(backend=ProcessBackend(2))
        process = _fig12(TINY, process_ctx)
        process_ctx.close()

        queue_ctx, backend = _queue_context(tmp_path)
        queued = _fig12(TINY, queue_ctx)

        assert serial.metrics == process.metrics
        assert serial.metrics == queued.metrics
        # The participating submitter executed everything itself ...
        assert backend.stats.local_executed == 3
        assert backend.stats.enqueued == 3
        # ... and a warm re-run over the same cache recalls all of it.
        warm_ctx, _ = _queue_context(tmp_path)
        warm = _fig12(TINY, warm_ctx)
        assert warm.metrics == serial.metrics
        assert warm_ctx.stats.hits == warm_ctx.stats.submitted == 3
        assert warm_ctx.stats.executed == 0

    def test_default_backend_selection(self):
        assert isinstance(default_backend(1), SerialBackend)
        assert isinstance(default_backend(4), ProcessBackend)
        assert OrchestrationContext(jobs=1).backend.name == "serial"
        assert OrchestrationContext(jobs=3).backend.name == "process"

    def test_create_backend_factory(self, tmp_path):
        assert create_backend("serial").name == "serial"
        assert create_backend("process", jobs=2).name == "process"
        queue = create_backend("queue", queue_dir=tmp_path / "q")
        assert queue.name == "queue"
        with pytest.raises(BackendError, match="unknown backend"):
            create_backend("slurm")
        with pytest.raises(BackendError, match="queue directory"):
            create_backend("queue")

    def test_queue_backend_requires_cache(self, tmp_path):
        ctx = OrchestrationContext(
            backend=QueueBackend(tmp_path / "q"), cache=None
        )
        with pytest.raises(BackendError, match="cache"):
            ctx.run([make_task(("t",), _double, 1)])


# ----------------------------------------------------------------------
# Queue mechanics: leases, crash recovery, sharing, failures.
# ----------------------------------------------------------------------


class TestQueueMechanics:
    def test_participating_submitter_drains_alone(self, tmp_path):
        ctx, backend = _queue_context(tmp_path)
        tasks = [make_task((i,), _double, i) for i in range(5)]
        assert ctx.run(tasks, fingerprint="fp") == {
            (i,): i * 2 for i in range(5)
        }
        queue = backend.queue
        assert queue.pending_count() == 0
        assert queue.leased_count() == 0

    def test_restart_resumes_without_recomputing_cached_tasks(self, tmp_path):
        """Kill a sweep part-way; the re-run only executes the rest."""
        tasks = [make_task((i,), _double, i) for i in range(6)]

        first_ctx, _ = _queue_context(tmp_path)
        first_ctx.run(tasks[:4], fingerprint="fp")  # "crashed" after 4

        resumed_ctx, backend = _queue_context(tmp_path)
        results = resumed_ctx.run(tasks, fingerprint="fp")
        assert results == {(i,): i * 2 for i in range(6)}
        assert resumed_ctx.stats.hits == 4
        assert resumed_ctx.stats.executed == 2
        assert backend.stats.enqueued == 2  # only the missing tasks

    def test_stale_lease_of_dead_worker_reclaimed(self, tmp_path):
        """A lease whose worker died becomes claimable again."""
        ctx, backend = _queue_context(
            tmp_path, lease_timeout=0.5, poll_interval=0.05
        )
        queue = backend.queue.ensure()
        task = make_task(("t",), _double, 21)
        entry_key = ctx.cache.entry_key(task.key, "fp")
        queue.enqueue(TaskEnvelope(
            entry_key=entry_key, task=task, cache_version=ctx.cache.version
        ))
        # A worker claims the task and dies without completing it.
        lease = queue.claim()
        assert lease is not None
        stale = time.time() - 3600
        os.utime(lease.path, (stale, stale))

        # The submitter sees nothing claimable at first, reclaims the
        # stale lease, and finishes the sweep itself.
        assert ctx.run([task], fingerprint="fp") == {("t",): 42}
        assert backend.stats.leases_reclaimed == 1
        assert backend.stats.already_in_flight == 1
        assert queue.leased_count() == 0

    def test_task_already_in_flight_not_enqueued_twice(self, tmp_path):
        ctx, backend = _queue_context(tmp_path)
        queue = backend.queue.ensure()
        task = make_task(("t",), _double, 3)
        entry_key = ctx.cache.entry_key(task.key, "fp")
        queue.enqueue(TaskEnvelope(
            entry_key=entry_key, task=task, cache_version=ctx.cache.version
        ))
        assert ctx.run([task], fingerprint="fp") == {("t",): 6}
        assert backend.stats.enqueued == 0
        assert backend.stats.already_in_flight == 1

    def test_failing_task_surfaces_with_traceback(self, tmp_path):
        ctx, _ = _queue_context(tmp_path)
        with pytest.raises(QueueTaskFailed, match="exploded"):
            ctx.run([make_task(("t",), _boom)], fingerprint="fp")

    def test_failure_record_cleared_on_retry(self, tmp_path):
        ctx, backend = _queue_context(tmp_path)
        with pytest.raises(QueueTaskFailed):
            ctx.run([make_task(("t",), _boom)], fingerprint="fp")
        assert backend.queue.failure_for(
            ctx.cache.entry_key(("t",), "fp")
        ) is not None
        # A fresh attempt at the same key starts clean (e.g. after the
        # underlying flakiness was fixed without a code change).
        retry_ctx, _ = _queue_context(tmp_path)
        good = make_task(("t",), _double, 4)
        assert retry_ctx.run([good], fingerprint="fp") == {("t",): 8}

    def test_worker_refuses_version_mismatch(self, tmp_path):
        """A worker from a different source tree must not poison keys."""
        cache = ResultCache(tmp_path / "cache", version="v-submitter")
        queue = JobQueue(tmp_path / "cache" / "queue").ensure()
        task = make_task(("t",), _double, 21)
        queue.enqueue(TaskEnvelope(
            entry_key=cache.entry_key(task.key, "fp"),
            task=task,
            cache_version="v-submitter",
        ))
        worker = QueueWorker(
            queue,
            ResultCache(tmp_path / "cache", version="v-other"),
            poll_interval=0.01,
            idle_timeout=0.05,
            max_tasks=1,
        )
        stats = worker.run()
        assert stats.refused == 1
        assert stats.completed == 0
        assert queue.pending_count() == 1  # released, still claimable

    def test_participating_submitter_refuses_foreign_version_task(
        self, tmp_path
    ):
        """A participating submitter must not execute another
        submitter's task if the source trees differ (same refusal a
        worker makes)."""
        ctx, backend = _queue_context(tmp_path, poll_interval=0.01)
        queue = backend.queue.ensure()
        foreign = make_task(("foreign",), _double, 7)
        # "0"*64 sorts before any sha256 entry key, so a naive
        # claim-first-then-release submitter would starve on it.
        queue.enqueue(TaskEnvelope(
            entry_key="0" * 64, task=foreign, cache_version="some-other-tree"
        ))
        own = make_task(("own",), _double, 2)
        assert ctx.run([own], fingerprint="fp") == {("own",): 4}
        # The foreign task is untouched: still queued, never executed,
        # no failure recorded.
        assert queue.pending_count() == 1
        assert queue.failure_for("0" * 64) is None

    def test_interrupted_task_released_not_failed(self, tmp_path):
        """Ctrl-C mid-task re-queues the task; it is not a failure."""
        from repro.orchestration.worker import execute_lease

        cache = ResultCache(tmp_path / "cache")
        queue = JobQueue(tmp_path / "cache" / "queue").ensure()
        task = make_task(("t",), _interrupt)
        entry_key = cache.entry_key(task.key, "fp")
        queue.enqueue(TaskEnvelope(
            entry_key=entry_key, task=task, cache_version=cache.version
        ))
        lease = queue.claim()
        with pytest.raises(KeyboardInterrupt):
            execute_lease(lease, cache, queue)
        assert queue.failure_for(entry_key) is None
        assert queue.pending_count() == 1  # claimable by another worker
        assert queue.leased_count() == 0

    def test_vanished_result_republished_not_waited_on_forever(
        self, tmp_path
    ):
        """A completed task whose stored result is later discarded as
        corrupt must be re-enqueued by the submitter, not waited on
        until the heat death of the universe."""
        import threading

        from repro.orchestration import PendingTask
        from repro.orchestration.worker import execute_lease

        cache = ResultCache(tmp_path / "cache")
        backend = QueueBackend(
            default_queue_dir(cache.directory),
            participate=False,
            poll_interval=0.01,
        )
        queue = backend.queue
        task = make_task(("t",), _double, 21)
        entry_key = cache.entry_key(task.key, "fp")

        results = {}

        def drain():
            for key, value in backend.execute(
                [PendingTask(task=task, entry_key=entry_key)], cache
            ):
                results[key] = value

        submitter = threading.Thread(target=drain)
        submitter.start()
        try:
            # Act as the first worker: complete the task, then have the
            # stored result turn to garbage before the submitter reads
            # it (the corrupt-entry case cache recovery exists for).
            lease = self._claim_eventually(queue)
            result = lease.envelope.task.execute()
            cache.path_for(entry_key).parent.mkdir(
                parents=True, exist_ok=True
            )
            cache.path_for(entry_key).write_bytes(b"\x80\x04 torn")
            queue.complete(lease)

            # The submitter discards the corrupt entry and republishes;
            # a second worker pass completes it for real.
            lease = self._claim_eventually(queue, timeout=30)
            assert execute_lease(lease, cache, queue)
        finally:
            submitter.join(timeout=30)
        assert not submitter.is_alive(), "submitter never drained"
        assert results == {("t",): 42}
        assert backend.stats.requeued >= 1

    @staticmethod
    def _claim_eventually(queue, timeout: float = 10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            lease = queue.claim()
            if lease is not None:
                return lease
            time.sleep(0.01)
        raise AssertionError("no task became claimable in time")

    def test_claim_survives_reclaim_between_rename_and_utime(
        self, tmp_path, monkeypatch
    ):
        """Regression: renames preserve mtime, so a task that sat
        queued longer than the lease timeout looks stale the instant
        it becomes a lease -- a concurrent reclaimer can take it back
        between the claim rename and the claim-time ``os.utime``.
        That utime hitting FileNotFoundError must mean "no longer
        ours, move on", never a dead worker."""
        import repro.orchestration.jobqueue as jobqueue_module

        queue = JobQueue(tmp_path / "q").ensure()
        task = make_task(("t",), _double, 21)
        queue.enqueue(TaskEnvelope(
            entry_key="k1", task=task, cache_version="v"
        ))

        real_utime = os.utime

        def reclaiming_utime(path, *args, **kwargs):
            # The reclaimer wins the instant after our rename: the
            # lease goes back to tasks/, then the bump hits nothing.
            os.rename(path, queue.tasks_dir / Path(path).name)
            return real_utime(path, *args, **kwargs)

        monkeypatch.setattr(jobqueue_module.os, "utime", reclaiming_utime)
        assert queue.claim() is None  # pre-fix: FileNotFoundError
        monkeypatch.undo()
        # The task survived the interleaving and is claimable again.
        assert queue.pending_count() == 1
        assert queue.claim() is not None

    def test_collection_pass_scans_cache_once_not_per_entry(
        self, tmp_path, monkeypatch
    ):
        """Regression: the ``--queue-wait`` collection loop stat()ed
        every outstanding cache entry per pass -- O(N^2) metadata ops
        over a draining sweep.  A pass must be one directory scan."""
        from repro.orchestration import PendingTask

        cache = ResultCache(tmp_path / "cache")
        backend = QueueBackend(
            default_queue_dir(cache.directory),
            participate=False,
            poll_interval=0.01,
        )
        pending = []
        for i in range(25):
            task = make_task((i,), _double, i)
            entry_key = cache.entry_key(task.key, "fp")
            # Workers already published everything; the submitter only
            # has to collect.
            cache.store(entry_key, task.key, i * 2)
            pending.append(PendingTask(task=task, entry_key=entry_key))

        per_entry_stats = []
        real_exists = Path.exists

        def counting_exists(path):
            # Count per-entry existence probes in either cache layout
            # (sharded `ab/<key>.pkl` or legacy flat `<key>.pkl`).
            if path.suffix == ".pkl" and cache.directory in path.parents:
                per_entry_stats.append(path)
            return real_exists(path)

        monkeypatch.setattr(Path, "exists", counting_exists)
        results = dict(backend.execute(pending, cache))
        monkeypatch.undo()
        assert results == {(i,): i * 2 for i in range(25)}
        # Pre-fix: one Path.exists per outstanding entry per pass.
        assert per_entry_stats == []

    def test_version_mismatched_worker_settles_to_zero_churn(
        self, tmp_path, monkeypatch
    ):
        """Regression: a version-mismatched worker re-claimed and
        re-released the same foreign tasks every poll, forever.  After
        the first refusal the entry key must be skipped *before* the
        claim rename: exactly one claim + one release, ever."""
        import repro.orchestration.jobqueue as jobqueue_module

        queue = JobQueue(tmp_path / "q").ensure()
        task = make_task(("t",), _double, 21)
        queue.enqueue(TaskEnvelope(
            entry_key="k1", task=task, cache_version="v-submitter"
        ))

        renames = []
        real_rename = os.rename

        def counting_rename(src, dst, *args, **kwargs):
            renames.append((src, dst))
            return real_rename(src, dst, *args, **kwargs)

        monkeypatch.setattr(jobqueue_module.os, "rename", counting_rename)
        worker = QueueWorker(
            queue,
            ResultCache(tmp_path / "cache", version="v-other"),
            poll_interval=0.01,
            idle_timeout=0.3,  # ~30 polls
            heartbeat_interval=None,
        )
        stats = worker.run()
        monkeypatch.undo()
        assert stats.refused == 1
        assert queue.pending_count() == 1  # still there for a peer
        assert len(renames) == 2  # pre-fix: 2 renames x ~30 polls

    def test_short_lived_mopup_worker_reclaims_before_idle_exit(
        self, tmp_path
    ):
        """A worker started just to mop up a dead peer's stale lease
        (--idle-timeout shorter than the throttled reclaim interval)
        must still reclaim on its first idle pass, not exit having
        done nothing."""
        cache = ResultCache(tmp_path / "cache", version="v")
        queue = JobQueue(tmp_path / "cache" / "queue").ensure()
        task = make_task(("t",), _double, 21)
        entry_key = cache.entry_key(task.key, "fp")
        queue.enqueue(TaskEnvelope(
            entry_key=entry_key, task=task, cache_version="v"
        ))
        lease = queue.claim()  # the peer claims, then dies
        stale = time.time() - 3600
        os.utime(lease.path, (stale, stale))

        worker = QueueWorker(
            queue, cache,
            poll_interval=0.2,  # reclaim interval throttles to 2.0s
            idle_timeout=0.5,   # shorter than the reclaim interval
            lease_timeout=0.5,
            heartbeat_interval=None,
        )
        stats = worker.run()
        assert stats.reclaimed == 1
        assert stats.completed == 1
        assert cache.load(entry_key) == (True, 42)

    def test_fresh_heartbeat_protects_slow_task_from_reclaim(
        self, tmp_path
    ):
        """An over-age lease whose worker still beats is a slow task,
        not a dead worker: reclaim must leave it alone until the
        heartbeat itself goes silent for a lease-timeout."""
        queue = JobQueue(tmp_path / "q").ensure()
        task = make_task(("t",), _double, 1)
        queue.enqueue(TaskEnvelope(
            entry_key="k1", task=task, cache_version="v"
        ))
        lease = queue.claim()
        assert lease is not None
        stale = time.time() - 3600
        os.utime(lease.path, (stale, stale))

        now = time.time()
        beat = WorkerHeartbeat(
            worker_id="hostA:101", host="hostA", pid=101,
            started=now - 3600, last_beat=now, current_lease="k1",
        )
        queue.write_heartbeat(beat)
        assert queue.reclaim_stale(600.0) == 0  # alive: protected
        assert queue.leased_count() == 1

        # The beats stopped (worker died): freshness is judged by the
        # heartbeat file's mtime -- the shared filesystem's clock, not
        # the worker's self-reported wall clock -- so age the file.
        os.utime(queue.heartbeat_path("hostA:101"), (stale, stale))
        assert queue.reclaim_stale(600.0) == 1  # dead: reclaimed
        assert queue.pending_count() == 1

    def test_external_worker_process_drains_queue(self, tmp_path):
        """The acceptance path: a real `runner worker` subprocess
        executes every task while the submitter only waits."""
        cache_dir = tmp_path / "cache"
        cache = ResultCache(cache_dir)
        backend = QueueBackend(
            default_queue_dir(cache_dir),
            participate=False,
            poll_interval=0.05,
        )
        ctx = OrchestrationContext(cache=cache, backend=backend)

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        worker = subprocess.Popen(
            [
                sys.executable, "-m", "repro.experiments.runner", "worker",
                "--cache-dir", str(cache_dir),
                "--poll-interval", "0.05",
                "--idle-timeout", "60",
                "--max-tasks", "4",
                "--quiet",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            tasks = [make_task((i,), _double, i) for i in range(4)]
            results = ctx.run(tasks, fingerprint="fp")
        finally:
            try:
                worker.wait(timeout=60)
            except subprocess.TimeoutExpired:
                worker.kill()
                worker.wait()
        assert results == {(i,): i * 2 for i in range(4)}
        assert backend.stats.local_executed == 0
        assert backend.stats.remote_completed == 4
        assert worker.returncode == 0, worker.stderr.read()


# ----------------------------------------------------------------------
# Chunked transport: batching must never change a single result bit.
# ----------------------------------------------------------------------


def _setup_context(task):
    # Fully determined by setup_key -- the memoization contract.
    label = task.setup_key
    if isinstance(label, (tuple, list)):
        label = label[-1]
    return {"base": label * 10}


def _add_base(task, context):
    return context["base"] + task.params


def _make_setup_task(i):
    return make_task(
        (i,), _add_base, i,
        setup=_setup_context, setup_key=("base", i % 2),
    )


class TestChunkedExecution:
    def test_chunked_queue_bit_identical_to_serial(self, tmp_path):
        """The tentpole contract: chunking is transport only."""
        serial = _fig12(TINY)
        ctx, backend = _queue_context(tmp_path, chunk_size=2)
        chunked = _fig12(TINY, ctx)
        assert serial.metrics == chunked.metrics
        assert backend.stats.chunks_enqueued >= 1
        assert backend.stats.enqueued == 3
        # Per-task cache entries, exactly as the unchunked queue lays
        # them out: a warm unchunked run recalls everything.
        warm_ctx, _ = _queue_context(tmp_path)
        warm = _fig12(TINY, warm_ctx)
        assert warm.metrics == serial.metrics
        assert warm_ctx.stats.hits == warm_ctx.stats.submitted == 3

    def test_chunked_process_backend_bit_identical(self, tmp_path):
        serial = _fig12(TINY)
        ctx = OrchestrationContext(backend=ProcessBackend(2, chunksize=3))
        chunked = _fig12(TINY, ctx)
        ctx.close()
        assert serial.metrics == chunked.metrics

    def test_auto_chunk_size_keeps_small_sweeps_unchunked(self):
        assert auto_chunk_size(1) == 1
        assert auto_chunk_size(8) == 1
        assert auto_chunk_size(9) == 2
        assert auto_chunk_size(42) == 6
        assert auto_chunk_size(300) == 32  # capped
        assert auto_pool_chunksize(8, jobs=2) == 1
        assert auto_pool_chunksize(400, jobs=2) >= 1

    def test_chunk_envelope_roundtrip_and_stable_key(self, tmp_path):
        members = tuple(
            TaskEnvelope(
                entry_key=f"k{i}", task=make_task((i,), _double, i),
                cache_version="v",
            )
            for i in range(3)
        )
        chunk = ChunkEnvelope(members=members, cache_version="v")
        assert chunk.queue_key == chunk_queue_key(
            [m.entry_key for m in members]
        )
        assert chunk.queue_key.startswith("chunk-")
        revived = envelope_from_payload(chunk.to_payload())
        assert isinstance(revived, ChunkEnvelope)
        assert revived.queue_key == chunk.queue_key
        assert [m.entry_key for m in revived.members] == ["k0", "k1", "k2"]
        # Single-task payloads keep round-tripping as TaskEnvelopes.
        single = envelope_from_payload(members[0].to_payload())
        assert isinstance(single, TaskEnvelope)
        assert single.queue_key == "k0"

    def test_mid_chunk_failure_loses_only_the_failed_member(self, tmp_path):
        """Member results publish as they complete; one bad member
        records one failure and the rest of the chunk still lands."""
        from repro.orchestration.worker import execute_lease

        cache = ResultCache(tmp_path / "cache")
        queue = JobQueue(tmp_path / "cache" / "queue").ensure()
        good_a = make_task(("a",), _double, 1)
        bad = make_task(("b",), _boom)
        good_b = make_task(("c",), _double, 3)
        members = tuple(
            TaskEnvelope(
                entry_key=cache.entry_key(task.key, "fp"), task=task,
                cache_version=cache.version,
            )
            for task in (good_a, bad, good_b)
        )
        queue.enqueue(ChunkEnvelope(members=members, cache_version=cache.version))
        lease = queue.claim()
        stats = WorkerStats()
        assert execute_lease(lease, cache, queue, stats=stats) is False
        assert stats.completed == 2
        assert stats.failed == 1
        assert cache.load(members[0].entry_key) == (True, 2)
        assert cache.load(members[2].entry_key) == (True, 6)
        failure = queue.failure_for(members[1].entry_key)
        assert failure is not None and "exploded" in failure.error
        assert queue.failure_for(members[0].entry_key) is None
        assert queue.leased_count() == 0
        assert queue.pending_count() == 0

    def test_requeued_chunk_skips_already_published_members(self, tmp_path):
        """A chunk claimed again after a mid-chunk death re-runs only
        the members whose results never landed."""
        from repro.orchestration.worker import execute_lease

        cache = ResultCache(tmp_path / "cache")
        queue = JobQueue(tmp_path / "cache" / "queue").ensure()
        members = tuple(
            TaskEnvelope(
                entry_key=cache.entry_key((i,), "fp"),
                task=make_task((i,), _double, i),
                cache_version=cache.version,
            )
            for i in range(3)
        )
        # The first worker published member 0, then was SIGKILLed; its
        # stale lease got reclaimed back into tasks/.
        cache.store(members[0].entry_key, (0,), 0)
        survivor = cache.path_for(members[0].entry_key)
        before = survivor.stat().st_mtime_ns
        queue.enqueue(ChunkEnvelope(members=members, cache_version=cache.version))
        stats = WorkerStats()
        assert execute_lease(queue.claim(), cache, queue, stats=stats)
        assert stats.completed == 2  # members 1 and 2 only
        assert survivor.stat().st_mtime_ns == before  # untouched
        assert all(
            cache.load(member.entry_key) == (True, i * 2)
            for i, member in enumerate(members)
        )

    def test_interrupted_chunk_released_with_survivors_intact(self, tmp_path):
        """Ctrl-C mid-chunk: completed members stay published, the
        chunk goes back to the queue, nothing is marked failed."""
        from repro.orchestration.worker import execute_lease

        cache = ResultCache(tmp_path / "cache")
        queue = JobQueue(tmp_path / "cache" / "queue").ensure()
        first = make_task(("a",), _double, 1)
        interrupting = make_task(("b",), _interrupt)
        members = tuple(
            TaskEnvelope(
                entry_key=cache.entry_key(task.key, "fp"), task=task,
                cache_version=cache.version,
            )
            for task in (first, interrupting)
        )
        queue.enqueue(ChunkEnvelope(members=members, cache_version=cache.version))
        lease = queue.claim()
        with pytest.raises(KeyboardInterrupt):
            execute_lease(lease, cache, queue)
        assert cache.load(members[0].entry_key) == (True, 2)
        assert queue.failure_for(members[1].entry_key) is None
        assert queue.pending_count() == 1  # the chunk, claimable again


# ----------------------------------------------------------------------
# Setup memoization: once per key per process, bit-identical results.
# ----------------------------------------------------------------------


class TestSetupMemoization:
    def test_memoized_matches_unmemoized(self):
        tasks = [_make_setup_task(i) for i in range(6)]
        unmemoized = [execute_task_profiled(t)[0] for t in tasks]
        cache = SetupCache()
        memoized = [execute_task_profiled(t, cache)[0] for t in tasks]
        assert memoized == unmemoized
        # Two distinct setup keys (i % 2) across six tasks.
        assert cache.misses == 2
        assert cache.hits == 4

    def test_lru_eviction_rebuilds_not_breaks(self):
        cache = SetupCache(capacity=2)
        for i in range(4):
            task = make_task(
                (i,), _add_base, i, setup=_setup_context, setup_key=i,
            )
            assert cache.context_for(task) == {"base": i * 10}
        assert cache.misses == 4
        # Key 0 was evicted; asking again rebuilds rather than failing.
        task0 = make_task(
            (0,), _add_base, 0, setup=_setup_context, setup_key=0,
        )
        assert cache.context_for(task0) == {"base": 0}
        assert cache.misses == 5

    def test_unhashable_setup_key_falls_back_to_unmemoized(self):
        cache = SetupCache()
        task = make_task(
            (0,), _add_base, 7, setup=_setup_context, setup_key=[1, 2],
        )
        assert cache.context_for(task) == {"base": 20}
        assert cache.context_for(task) == {"base": 20}
        assert cache.hits == 0  # never memoized, always rebuilt
        assert cache.misses == 2

    def test_fig12_declares_provider_setup(self, tmp_path):
        """The Svärd threshold providers ride the setup hook (and the
        goldens elsewhere pin that memoizing them changes nothing)."""
        ctx, _ = _queue_context(tmp_path, chunk_size=3)
        _fig12(TINY, ctx)
        assert ctx.backend._setup_cache.misses >= 1


# ----------------------------------------------------------------------
# Profiling stamps: every execution leaves its timing in provenance.
# ----------------------------------------------------------------------


class TestProfilingStamps:
    def _profile_of(self, cache, entry_key):
        entry = pickle.loads(cache.path_for(entry_key).read_bytes())
        return profile_from_provenance(entry.get("provenance"))

    def assert_complete(self, profile, chunk_size):
        assert profile is not None
        assert set(PROFILE_FIELDS) <= set(profile)
        assert all(profile[field] >= 0 for field in PROFILE_FIELDS)
        assert profile["chunk_size"] == chunk_size
        assert profile["result_bytes"] > 0

    def test_serial_and_process_paths_stamp_profiles(self, tmp_path):
        for jobs in (1, 2):
            cache = ResultCache(tmp_path / f"cache{jobs}")
            ctx = OrchestrationContext(jobs=jobs, cache=cache)
            tasks = [make_task((i,), _double, i) for i in range(3)]
            ctx.run(tasks, fingerprint="fp")
            ctx.close()
            for i in range(3):
                self.assert_complete(
                    self._profile_of(cache, cache.entry_key((i,), "fp")),
                    chunk_size=1,
                )

    def test_chunked_queue_path_stamps_chunk_size(self, tmp_path):
        ctx, _ = _queue_context(tmp_path, chunk_size=2)
        tasks = [make_task((i,), _double, i) for i in range(4)]
        ctx.run(tasks, fingerprint="fp")
        for i in range(4):
            self.assert_complete(
                self._profile_of(
                    ctx.cache, ctx.cache.entry_key((i,), "fp")
                ),
                chunk_size=2,
            )

    def test_setup_tasks_report_setup_time(self):
        result, profile = execute_task_profiled(_make_setup_task(3))
        assert result == 13  # base 10 (setup_key parity 1) + params 3
        assert profile["setup_s"] >= 0.0
        assert profile["run_s"] >= 0.0
        # Transport fields are stamped at store time, not here.
        assert "store_s" not in profile


# ----------------------------------------------------------------------
# Concurrent cache writers: one .repro_cache/, many processes.
# ----------------------------------------------------------------------


def _hammer_cache(directory, offsets, barrier):
    """Worker-process body: store many entries into one shared cache."""
    cache = ResultCache(directory, version="vX")
    barrier.wait()  # maximize write overlap between the processes
    for offset in offsets:
        for index in range(25):
            entry_key = cache.entry_key(("entry", index), "fp")
            cache.store(entry_key, ("entry", index), index * 10 + offset)


class TestConcurrentCacheWriters:
    def test_two_processes_one_cache_no_corruption(self, tmp_path):
        """Two processes racing on the same entries never corrupt them.

        Both write the full key range simultaneously (os.replace makes
        each store atomic), so afterwards every entry must load as one
        of the two written values -- never a torn mix, never a
        validation failure.
        """
        ctx = multiprocessing.get_context()
        barrier = ctx.Barrier(2)
        writers = [
            ctx.Process(
                target=_hammer_cache, args=(tmp_path, [offset], barrier)
            )
            for offset in (1, 2)
        ]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(timeout=120)
            assert writer.exitcode == 0

        cache = ResultCache(tmp_path, version="vX")
        for index in range(25):
            hit, value = cache.load(cache.entry_key(("entry", index), "fp"))
            assert hit
            assert value in (index * 10 + 1, index * 10 + 2)
        assert cache.stats.corrupt_discarded == 0

    def test_corrupt_entry_recovered_under_queue_backend(self, tmp_path):
        """Queue runs recompute corrupt entries like every other path."""
        ctx, backend = _queue_context(tmp_path)
        task = make_task(("t",), _double, 21)
        assert ctx.run([task], fingerprint="fp") == {("t",): 42}

        entry_key = ctx.cache.entry_key(task.key, "fp")
        ctx.cache.path_for(entry_key).write_bytes(b"\x80\x04 torn write")

        fresh_ctx, fresh_backend = _queue_context(tmp_path)
        assert fresh_ctx.run([task], fingerprint="fp") == {("t",): 42}
        assert fresh_ctx.cache.stats.corrupt_discarded == 1
        assert fresh_ctx.stats.executed == 1
        assert fresh_backend.stats.local_executed == 1
        # The recomputed entry is valid again.
        again_ctx, _ = _queue_context(tmp_path)
        assert again_ctx.run([task], fingerprint="fp") == {("t",): 42}
        assert again_ctx.stats.hits == 1

    def test_corrupt_queue_task_file_skipped(self, tmp_path):
        """Garbage dropped into tasks/ is discarded, not fatal."""
        queue = JobQueue(tmp_path / "q").ensure()
        (queue.tasks_dir / "junk.task").write_bytes(b"not a pickle")
        assert queue.claim() is None
        assert queue.pending_count() == 0
