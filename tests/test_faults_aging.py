"""Tests for the aging drift model (Fig 10)."""

import numpy as np
import pytest

from repro.faults.aging import AGING_DROP_FRACTIONS, REFERENCE_DAYS, AgingModel
from repro.faults.modules import module_by_label
from repro.faults.variation import HC_GRID

K = 1024


class TestDropProbabilities:
    def test_fig10_fractions_encoded(self):
        assert AGING_DROP_FRACTIONS[12 * K] == pytest.approx(0.004)
        assert AGING_DROP_FRACTIONS[32 * K] == pytest.approx(0.077)
        assert AGING_DROP_FRACTIONS[40 * K] == pytest.approx(0.091)

    def test_strongest_rows_never_drop(self):
        model = AgingModel()
        assert model.drop_probability(96 * K) == 0.0
        assert model.drop_probability(128 * K) == 0.0

    def test_scaling_with_days(self):
        reference = AgingModel(days=REFERENCE_DAYS)
        doubled = AgingModel(days=2 * REFERENCE_DAYS)
        assert doubled.drop_probability(32 * K) == pytest.approx(
            2 * reference.drop_probability(32 * K)
        )

    def test_probability_clamped_to_one(self):
        model = AgingModel(days=1e9)
        assert model.drop_probability(40 * K) == 1.0

    def test_zero_days_no_aging(self):
        model = AgingModel(days=0)
        values = np.array([12 * K] * 1000)
        assert np.array_equal(model.age_measured_values(values), values)

    def test_negative_days_rejected(self):
        with pytest.raises(ValueError):
            AgingModel(days=-1)


class TestAgeMeasuredValues:
    def test_drops_are_one_grid_step(self):
        model = AgingModel(seed=1)
        values = np.full(200_000, 32 * K)
        aged = model.age_measured_values(values)
        changed = aged[aged != 32 * K]
        assert np.all(changed == 24 * K)

    def test_drop_fraction_near_expected(self):
        model = AgingModel(seed=1)
        values = np.full(200_000, 40 * K)
        aged = model.age_measured_values(values)
        fraction = np.mean(aged != 40 * K)
        assert fraction == pytest.approx(0.091, abs=0.005)

    def test_monotone_never_increases(self):
        model = AgingModel(seed=2)
        values = np.random.default_rng(0).choice(
            np.array(HC_GRID), size=5000
        )
        aged = model.age_measured_values(values)
        assert np.all(aged <= values)

    def test_deterministic(self):
        values = np.full(10_000, 24 * K)
        a = AgingModel(seed=5).age_measured_values(values)
        b = AgingModel(seed=5).age_measured_values(values)
        assert np.array_equal(a, b)


class TestAgeField:
    def test_aged_field_weaker_or_equal(self):
        field = module_by_label("H3").generate_field(rows_per_bank=8192, seed=0)
        aged = AgingModel(seed=0).age_field(field)
        assert np.all(aged.hc_first <= field.hc_first + 1e-9)

    def test_aged_measurement_shows_drops(self):
        field = module_by_label("H3").generate_field(rows_per_bank=32768, seed=0)
        aged = AgingModel(seed=0).age_field(field)
        before = field.measured_hc_first()
        after = aged.measured_hc_first()
        assert (after < before).sum() > 0
        assert np.all(after <= before)

    def test_128k_rows_unchanged(self):
        field = module_by_label("H3").generate_field(rows_per_bank=32768, seed=0)
        aged = AgingModel(seed=0).age_field(field)
        before = field.measured_hc_first()
        after = aged.measured_hc_first()
        mask = before == 128 * K
        assert np.all(after[mask] == 128 * K)


class TestTransitionMatrix:
    def test_rows_sum_to_one(self):
        model = AgingModel(seed=3)
        before = np.random.default_rng(1).choice(np.array(HC_GRID), size=10_000)
        after = model.age_measured_values(before)
        matrix = model.transition_matrix(before, after)
        from collections import defaultdict

        sums = defaultdict(float)
        for (b, _), p in matrix.items():
            sums[b] += p
        for total in sums.values():
            assert total == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        model = AgingModel()
        with pytest.raises(ValueError):
            model.transition_matrix(np.zeros(3), np.zeros(4))
