"""Tests for the JEDEC conformance checker and the engine command log.

Three layers:

* rulebook/checker unit tests with hand-crafted command logs, including
  one mutation test per rule proving the rule *individually* detects an
  injected violation;
* engine-conformance property tests: real simulations (synthetic
  suites, adversarial traces, every defense, a fig12-scale cell) whose
  logged command streams must replay with zero violations, plus the
  inverse mutation (an inflated rulebook must flag a legal stream);
* instrumentation-safety tests: turning the log on must not change a
  single result bit, and edge-case configs stay conformant with pinned
  counters.
"""

import dataclasses

import pytest

from repro.defenses import DEFENSE_CLASSES
from repro.dram.commands import CommandKind, TimedCommand, act, pre, rd, ref, wr
from repro.dram.timing import (
    DDR4_2666,
    DDR4_3200,
    DDR5_4800,
    LPDDR4_3200,
    timing_for_speed,
)
from repro.sim.config import SystemConfig
from repro.sim.conformance import (
    REFRESH_POSTPONE_LIMIT,
    ConformanceReport,
    TimingChecker,
    TimingRule,
    check_run,
    timing_rules,
)
from repro.sim.engine import MemorySystem, TraceStep
from repro.workloads.adversarial import HydraAdversarialTrace, RrsAdversarialTrace
from repro.workloads.suites import profile_by_name
from repro.workloads.synthetic import SyntheticTrace

T = DDR4_3200


def timed(time_ns, command):
    return TimedCommand(time_ns, command)


def small_config(**overrides):
    defaults = dict(
        cores=1, ranks=1, bank_groups=2, banks_per_group=2,
        rows_per_bank=4096, requests_per_core=200, mlp_per_core=2,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


def synthetic_traces(config, suite="ycsb", seed=0):
    profile = profile_by_name(suite)
    return [
        SyntheticTrace(
            profile,
            total_banks=config.total_banks,
            rows_per_bank=config.rows_per_bank,
            columns_per_row=config.columns_per_row,
            seed=seed * 1000 + core,
        )
        for core in range(config.cores)
    ]


class TestTimingRules:
    def test_rulebook_derived_from_preset(self):
        rules = {(r.name, r.prev, r.curr): r for r in timing_rules(T)}
        assert rules[("tRCD", CommandKind.ACT, CommandKind.RD)].delay_ns == T.tRCD
        assert rules[("tRAS", CommandKind.ACT, CommandKind.PRE)].delay_ns == T.tRAS
        assert rules[("tRP", CommandKind.PRE, CommandKind.ACT)].delay_ns == T.tRP
        assert rules[("tRC", CommandKind.ACT, CommandKind.ACT)].delay_ns == T.tRC
        assert rules[("tRFC", CommandKind.REF, CommandKind.ACT)].delay_ns == T.tRFC

    def test_rank_scope_for_act_pacing(self):
        by_name = {}
        for rule in timing_rules(T):
            by_name.setdefault(rule.name, rule)
        assert by_name["tRRD_S"].scope == "rank"
        assert by_name["tRCD"].scope == "bank"

    def test_invalid_rules_rejected(self):
        with pytest.raises(ValueError):
            TimingRule("x", CommandKind.ACT, CommandKind.RD, "channel", 1.0)
        with pytest.raises(ValueError):
            TimingRule("x", CommandKind.ACT, CommandKind.RD, "bank", -1.0)

    def test_checker_validation(self):
        with pytest.raises(ValueError):
            TimingChecker(T, tolerance_ns=-1.0)
        with pytest.raises(ValueError):
            TimingChecker(T, refresh_postpone_limit=0)

    def test_rulebook_follows_generation_rule_table(self):
        # The checker derives its rulebook from the preset's declarative
        # rule table, so each generation gets its own JEDEC vocabulary.
        for preset in (T, LPDDR4_3200, DDR5_4800):
            rules = timing_rules(preset)
            assert len(rules) == len(preset.rule_table)
            for rule, spec in zip(rules, preset.rule_table):
                assert rule.name == spec.name
                assert rule.prev is CommandKind[spec.prev]
                assert rule.curr is CommandKind[spec.curr]
                assert rule.scope == spec.scope
                assert rule.delay_ns == getattr(preset, spec.parameter)

    def test_lpddr4_rulebook_uses_per_bank_refresh_and_flat_trrd(self):
        names = {rule.name for rule in timing_rules(LPDDR4_3200)}
        assert "tRFCpb" in names
        assert "tRRD" in names
        assert "tRRD_S" not in names
        assert "tRFC" not in names

    def test_ddr5_rulebook_uses_same_bank_refresh(self):
        names = {rule.name for rule in timing_rules(DDR5_4800)}
        assert "tRFCsb" in names
        assert "tRRD_S" in names
        assert "tRFC" not in names

    def test_rule_and_report_render(self):
        rule = timing_rules(T)[0]
        assert "tRCD" in str(rule)
        report = ConformanceReport(commands=0, checks={}, violations=[])
        assert report.ok
        assert "0 violation(s)" in report.render_text()


class TestRuleMutations:
    """Each JEDEC rule individually catches an injected violation."""

    def replay(self, commands):
        return TimingChecker(T).replay(commands)

    def assert_only(self, report, rule):
        assert not report.ok
        flagged = {violation.rule for violation in report.violations}
        assert flagged == {rule}
        violation = report.violations_for(rule)[0]
        assert violation.rule in str(violation)
        assert rule in report.to_json_dict()["violations"][0]["rule"]

    def test_trcd_read_too_early(self):
        report = self.replay([
            timed(0.0, act(0, 7)),
            timed(T.tRCD / 2, rd(0, 3)),
        ])
        self.assert_only(report, "tRCD")
        assert report.violations[0].slack_ns == pytest.approx(-T.tRCD / 2)

    def test_trcd_write_too_early(self):
        report = self.replay([
            timed(0.0, act(0, 7)),
            timed(T.tRCD - 1.0, wr(0, 3)),
        ])
        self.assert_only(report, "tRCD")

    def test_tras_precharge_too_early(self):
        report = self.replay([
            timed(0.0, act(0, 7)),
            timed(T.tRCD, rd(0, 0)),
            timed(T.tRAS / 2, pre(0)),
        ])
        self.assert_only(report, "tRAS")

    def test_trp_activate_too_early(self):
        report = self.replay([
            timed(0.0, pre(0)),
            timed(T.tRP / 2, act(0, 7)),
        ])
        self.assert_only(report, "tRP")

    def test_trrd_s_cross_bank_act_too_early(self):
        # Different banks, same rank: only the rank-level pacing rule
        # applies (per-bank rules see each bank's first command).
        report = self.replay([
            timed(0.0, act(0, 7)),
            timed(T.tRRD_S / 2, act(1, 9)),
        ])
        self.assert_only(report, "tRRD_S")

    def test_tfaw_fifth_act_inside_window(self):
        spacing = T.tRRD_S + 0.5
        commands = [
            timed(index * spacing, act(index, 7))
            for index in range(4)
        ]
        fifth_time = T.tFAW - 1.0
        assert fifth_time > 3 * spacing + T.tRRD_S  # legal w.r.t. tRRD_S
        commands.append(timed(fifth_time, act(4, 7)))
        report = self.replay(commands)
        self.assert_only(report, "tFAW")

    def test_trfc_act_during_refresh(self):
        report = self.replay([
            timed(0.0, dataclasses.replace(ref(0), bank=0)),
            timed(T.tRFC / 2, act(0, 7)),
        ])
        self.assert_only(report, "tRFC")

    def test_trc_back_to_back_act_same_bank(self):
        # No PRE between the two ACTs, so the structural rule fires
        # alongside tRC; the timing violation must still be attributed.
        report = self.replay([
            timed(0.0, act(0, 7)),
            timed(T.tRC - 1.0, act(0, 8)),
        ])
        assert {v.rule for v in report.violations} == {"tRC", "bank-state"}

    def test_dropped_pre_is_structural_violation(self):
        report = self.replay([
            timed(0.0, act(0, 7)),
            timed(10 * T.tRC, act(0, 8)),
        ])
        flagged = {violation.rule for violation in report.violations}
        assert flagged == {"bank-state"}
        assert "row 7 is open" in report.violations[0].message

    def test_column_command_on_precharged_bank(self):
        report = self.replay([timed(0.0, rd(0, 3))])
        assert {v.rule for v in report.violations} == {"bank-state"}

    def test_refresh_cadence_gap_too_large(self):
        limit = REFRESH_POSTPONE_LIMIT * T.tREFI
        report = self.replay([
            timed(0.0, dataclasses.replace(ref(0), bank=0)),
            timed(limit + 50.0, dataclasses.replace(ref(0), bank=0)),
        ])
        assert {v.rule for v in report.violations} == {"tREFI"}

    def test_first_refresh_too_late(self):
        limit = REFRESH_POSTPONE_LIMIT * T.tREFI
        report = self.replay([
            timed(limit + 50.0, dataclasses.replace(ref(0), bank=0)),
        ])
        assert {v.rule for v in report.violations} == {"tREFI"}

    def test_legal_sequence_is_clean(self):
        commands = [
            timed(0.0, act(0, 7)),
            timed(T.tRCD, rd(0, 0)),
            timed(T.tRAS, pre(0)),
            timed(T.tRAS + T.tRP, act(0, 8)),
            timed(T.tRAS + T.tRP + T.tRCD, wr(0, 1)),
        ]
        report = TimingChecker(T).replay(commands)
        assert report.ok
        assert report.checks["tRC"] == 2  # counted even when prev exists once

    def test_out_of_order_log_is_time_sorted(self):
        # The engine logs in per-bank service order; the checker must
        # sort by time before replaying or cross-bank rules misfire.
        commands = [
            timed(T.tRRD_S / 2, act(1, 9)),
            timed(0.0, act(0, 7)),
        ]
        report = TimingChecker(T).replay(commands)
        assert {v.rule for v in report.violations} == {"tRRD_S"}


class TestEngineConformance:
    @pytest.mark.parametrize("speed", [3200, 2666])
    @pytest.mark.parametrize("suite", ["ycsb", "spec17"])
    def test_synthetic_runs_are_conformant(self, speed, suite):
        config = small_config(
            cores=2, requests_per_core=400, timing=timing_for_speed(speed)
        )
        system = MemorySystem(config, synthetic_traces(config, suite))
        result, report = check_run(system)
        assert report.ok, report.render_text()
        assert result.activations > 0
        act_count = report.checks["tRC"]
        assert act_count == result.activations

    @pytest.mark.parametrize("name", sorted(DEFENSE_CLASSES))
    def test_defended_runs_are_conformant(self, name):
        config = small_config(
            cores=2, requests_per_core=300, defense_epoch_ns=100_000.0
        )
        kwargs = dict(rows_per_bank=config.rows_per_bank, seed=0)
        if name == "BlockHammer":
            kwargs["epoch_ns"] = config.defense_epoch_ns
        defense = DEFENSE_CLASSES[name](512, **kwargs)
        system = MemorySystem(
            config, synthetic_traces(config, "spec06"), defense=defense, seed=0
        )
        _, report = check_run(system)
        assert report.ok, report.render_text()

    @pytest.mark.parametrize("timing", [LPDDR4_3200, DDR5_4800],
                             ids=lambda t: t.generation)
    def test_other_generations_are_conformant(self, timing):
        # LPDDR4's per-bank and DDR5's same-bank refresh, replayed
        # against rulebooks derived from their own rule tables.
        config = small_config(
            cores=2, requests_per_core=400, timing=timing
        )
        system = MemorySystem(config, synthetic_traces(config))
        result, report = check_run(system)
        assert report.ok, report.render_text()
        assert result.refreshes_issued > 0
        refresh_rule = (
            "tRFCpb" if timing is LPDDR4_3200 else "tRFCsb"
        )
        assert report.checks[refresh_rule] > 0

    def test_adversarial_traces_are_conformant(self):
        config = small_config(cores=2, requests_per_core=300)
        traces = [
            HydraAdversarialTrace(rows_per_bank=config.rows_per_bank,
                                  bank_stride=config.total_banks),
            RrsAdversarialTrace(),
        ]
        _, report = check_run(MemorySystem(config, traces))
        assert report.ok, report.render_text()

    def test_fig12_default_scale_cell_is_conformant(self):
        # One cell of the fig12 grid at its default scale: the
        # Table 4 system, a seeded 8-core mix, PARA at HC_first=1024.
        from repro.workloads.mixes import build_traces, generate_mixes

        config = SystemConfig(
            requests_per_core=4000, defense_epoch_ns=1_000_000.0
        )
        mix = generate_mixes(1, cores=config.cores, seed=42)[0]
        traces = build_traces(mix, config)
        defense = DEFENSE_CLASSES["PARA"](
            1024, rows_per_bank=config.rows_per_bank, seed=0
        )
        system = MemorySystem(config, traces, defense=defense, seed=0)
        result, report = check_run(system)
        assert report.ok, report.render_text()
        # Every demand activation appears in the log exactly once.
        act_checks = report.checks["tRC"]
        assert act_checks == result.activations
        assert report.checks["tRCD"] == config.cores * config.requests_per_core
        assert result.refreshes_issued > 0
        assert report.checks["tRFC"] > 0

    def test_inflated_rulebook_flags_a_legal_stream(self):
        # The inverse mutation: the engine's stream is legal for its
        # own timing but must violate a rulebook with 4x tRCD.
        config = small_config(requests_per_core=300)
        log = []
        MemorySystem(config, synthetic_traces(config)).run(command_log=log)
        strict = dataclasses.replace(T, tRCD=4 * T.tRCD)
        report = TimingChecker(strict).replay(log)
        assert not report.ok
        assert report.violations_for("tRCD")

    def test_logging_does_not_change_results(self):
        def run(with_log):
            config = small_config(cores=2, requests_per_core=400)
            system = MemorySystem(config, synthetic_traces(config), seed=3)
            if with_log:
                return system.run(command_log=[]), None
            return system.run(), None

        plain, _ = run(False)
        logged, _ = run(True)
        assert plain.total_ns == logged.total_ns
        assert plain.finish_times() == logged.finish_times()
        assert plain.row_hits == logged.row_hits
        assert plain.row_misses == logged.row_misses
        assert plain.activations == logged.activations
        assert plain.refreshes_issued == logged.refreshes_issued
        assert (
            [core.total_latency_ns for core in plain.cores]
            == [core.total_latency_ns for core in logged.cores]
        )


class FixedTrace:
    def __init__(self, steps):
        self.steps = list(steps)
        self._i = 0

    def next_step(self, chain):
        step = self.steps[self._i % len(self.steps)]
        self._i += 1
        return step


class TestEngineEdgeCases:
    def test_single_bank_system_is_conformant(self):
        config = small_config(
            ranks=1, bank_groups=1, banks_per_group=1, requests_per_core=150
        )
        trace = FixedTrace([
            TraceStep(bank=0, row=r % 16, column=r % 4, gap_ns=8.0)
            for r in range(32)
        ])
        result, report = check_run(MemorySystem(config, [trace]))
        assert report.ok, report.render_text()
        assert config.total_banks == 1
        assert result.cores[0].completed_requests == 150
        # Pinned counters: logging must never perturb the schedule.
        assert (result.row_hits, result.row_misses) == (0, 150)
        assert result.activations == 150
        assert result.total_ns == pytest.approx(6795.25)

    def test_more_mlp_than_requests_is_conformant(self):
        config = small_config(mlp_per_core=8, requests_per_core=4)
        trace = FixedTrace([
            TraceStep(bank=b % 4, row=1, column=0, gap_ns=0.0)
            for b in range(8)
        ])
        result, report = check_run(MemorySystem(config, [trace]))
        assert report.ok, report.render_text()
        assert result.cores[0].completed_requests == 4
        assert result.activations == 4

    def test_refresh_mid_queue_is_conformant(self):
        # Slow arrivals keep requests queued across the first tREFI
        # boundary, so the refresh lands with work in flight.
        config = small_config(requests_per_core=250)
        trace = FixedTrace([
            TraceStep(bank=b % 4, row=(b * 7) % 64, column=0, gap_ns=40.0)
            for b in range(16)
        ])
        result, report = check_run(MemorySystem(config, [trace]))
        assert report.ok, report.render_text()
        assert result.refreshes_issued == 1
        assert result.activations == 250
        assert result.total_ns == pytest.approx(10721.25)
        assert report.checks["tRFC"] > 0
        assert report.checks["tREFI"] > 0
