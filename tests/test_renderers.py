"""The CSV and LaTeX renderers (the cheap-renderer ROADMAP item)."""

import json

import pytest

from repro.experiments import runner
from repro.experiments.api import ResultSet, ResultTable
from repro.experiments.render import (
    CsvRenderer,
    LatexRenderer,
    get_renderer,
    renderer_names,
)


@pytest.fixture
def sample():
    return ResultSet(
        experiment="demo",
        title="Demo, with specials_&_commas",
        scalars={"max_f1": 0.75, "n": 3},
        tables=(
            ResultTable(
                name="main",
                headers=("label", "value"),
                rows=(("a,b", 1.5), ("c_d", None)),
            ),
            ResultTable(
                name="extra",
                headers=("k",),
                rows=(("x",),),
            ),
        ),
    )


class TestCsvRenderer:
    def test_registered(self):
        assert "csv" in renderer_names()
        assert get_renderer("csv").format_name == "csv"

    def test_render_concatenates_tables_with_markers(self, sample):
        text = CsvRenderer().render(sample)
        assert "# table: scalars" in text
        assert "# table: main" in text
        assert "# table: extra" in text
        # Cells containing commas are quoted, None stays empty.
        assert '"a,b",1.5' in text
        assert "c_d," in text

    def test_write_one_file_per_table(self, sample, tmp_path):
        paths = CsvRenderer().write(sample, tmp_path)
        assert sorted(p.name for p in paths) == [
            "demo.extra.csv", "demo.main.csv", "demo.scalars.csv",
        ]
        main = (tmp_path / "demo.main.csv").read_text()
        assert main.splitlines()[0] == "label,value"
        scalars = (tmp_path / "demo.scalars.csv").read_text()
        assert "max_f1,0.75" in scalars

    def test_runner_format_csv(self, tmp_path, capsys):
        code = runner.main([
            "run", "sec64", "--no-cache", "--format", "csv",
            "--out", str(tmp_path),
        ])
        assert code == 0
        written = list(tmp_path.glob("sec64.*.csv"))
        assert written, "csv artifacts missing"
        for path in written:
            assert path.read_text().strip()


class TestLatexRenderer:
    def test_registered(self):
        assert "latex" in renderer_names()

    def test_scalars_emitted_like_every_other_renderer(self, sample):
        text = LatexRenderer().render(sample)
        assert r"\label{tab:demo-scalars}" in text
        assert r"max\_f1" in text and "0.75" in text

    def test_render_escapes_and_structures(self, sample):
        text = LatexRenderer().render(sample)
        assert r"\begin{tabular}{ll}" in text
        assert r"\label{tab:demo-main}" in text
        # LaTeX specials escaped in titles and cells.
        assert r"specials\_\&\_commas" in text
        assert r"c\_d" in text
        # None renders as a dash, floats compactly.
        assert "-- \\\\" in text or "& --" in text

    def test_stdout_mode_via_runner(self, capsys):
        code = runner.main(["run", "sec64", "--no-cache", "--format", "latex"])
        assert code == 0
        out = capsys.readouterr().out
        assert r"\begin{table}" in out
        assert r"\end{tabular}" in out


class TestRendererEdgeCases:
    """Degenerate ResultSets must render cleanly in every format."""

    @pytest.fixture
    def empty_table(self):
        return ResultSet(
            experiment="empty",
            title="Nothing measured",
            tables=(ResultTable(
                name="main", headers=("k", "v"), rows=(),
            ),),
        )

    @pytest.fixture
    def scalar_only(self):
        return ResultSet(
            experiment="scalars-only",
            title="Headlines",
            scalars={"speedup": 1.23, "n": 0, "flag": None},
        )

    @pytest.mark.parametrize("fmt", ["text", "json", "csv", "latex", "html"])
    def test_empty_table_renders(self, fmt, empty_table):
        text = get_renderer(fmt).render(empty_table)
        assert isinstance(text, str)
        if fmt == "json":
            assert json.loads(text)["tables"][0]["rows"] == []
        if fmt == "csv":
            assert text.splitlines()[-1] == "k,v"  # header-only document
        if fmt == "html":
            assert "<thead>" in text and "<tbody></tbody>" in text

    @pytest.mark.parametrize("fmt", ["text", "json", "csv", "latex", "html"])
    def test_scalar_only_renders(self, fmt, scalar_only):
        text = get_renderer(fmt).render(scalar_only)
        assert isinstance(text, str)
        if fmt in ("csv", "latex"):
            assert "speedup" in text and "1.23" in text
        if fmt == "html":
            assert 'class="card"' in text and "speedup" in text

    def test_empty_table_write_roundtrip(self, empty_table, tmp_path):
        for fmt in ("json", "csv", "latex", "html"):
            assert get_renderer(fmt).write(empty_table, tmp_path)
