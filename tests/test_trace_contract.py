"""Contract tests for every ``Trace`` implementer, plus trace-file I/O.

The engine's ``Trace`` protocol is one method, ``next_step(chain)``,
but the experiments lean on an implicit contract: a trace constructed
from the same parameters (seed, file, pattern) must yield the *same*
step sequence for the same chain schedule, and every step must stay
inside the configured geometry.  These tests pin that contract across
SyntheticTrace, the adversarial traces, and TraceFileReader (plain
and gzip, via the fixtures in ``tests/data/``), then cover the
streaming reader's parsing, looping, and bounded-memory behaviour.
"""

import gzip
from pathlib import Path

import pytest

from repro.sim.config import SystemConfig
from repro.sim.conformance import check_run
from repro.sim.engine import MemorySystem
from repro.workloads import (
    SyntheticTrace,
    TraceExhausted,
    TraceFileReader,
    TraceParseError,
    readers_for_cores,
)
from repro.workloads.adversarial import (
    HydraAdversarialTrace,
    ManySidedHammerTrace,
    RrsAdversarialTrace,
)
from repro.workloads.suites import profile_by_name

DATA = Path(__file__).parent / "data"
PLAIN_FIXTURE = DATA / "sample_trace.txt"
GZIP_FIXTURE = DATA / "sample_trace.gz"

GEOMETRY = dict(total_banks=8, rows_per_bank=256, columns_per_row=16)

#: Each entry builds a fresh, identically-parameterized trace instance.
TRACE_FACTORIES = {
    "synthetic": lambda: SyntheticTrace(
        profile_by_name("ycsb"), seed=7, **GEOMETRY
    ),
    "hydra-adversarial": lambda: HydraAdversarialTrace(
        n_rows=64, bank_stride=GEOMETRY["total_banks"],
        rows_per_bank=GEOMETRY["rows_per_bank"],
    ),
    "rrs-adversarial": lambda: RrsAdversarialTrace(
        target_row=100, scratch_row=200,
    ),
    "manysided-hammer": lambda: ManySidedHammerTrace(
        n_sides=6, base_row=100, rows_per_bank=GEOMETRY["rows_per_bank"],
        start_offset=3,
    ),
    "tracefile-plain": lambda: TraceFileReader(PLAIN_FIXTURE, **GEOMETRY),
    "tracefile-gzip": lambda: TraceFileReader(GZIP_FIXTURE, **GEOMETRY),
}

#: An interleaved chain schedule, as the MLP frontend would issue it.
CHAIN_SCHEDULE = [0, 1, 0, 0, 1, 2, 1, 0, 2, 2, 0, 1] * 5


def steps_of(trace, schedule=CHAIN_SCHEDULE):
    return [trace.next_step(chain) for chain in schedule]


class TestTraceContract:
    @pytest.mark.parametrize("name", sorted(TRACE_FACTORIES))
    def test_same_parameters_same_sequence(self, name):
        factory = TRACE_FACTORIES[name]
        assert steps_of(factory()) == steps_of(factory())

    @pytest.mark.parametrize("name", sorted(TRACE_FACTORIES))
    def test_steps_stay_inside_geometry(self, name):
        for step in steps_of(TRACE_FACTORIES[name]()):
            assert 0 <= step.bank < GEOMETRY["total_banks"]
            assert 0 <= step.row < GEOMETRY["rows_per_bank"]
            assert 0 <= step.column < GEOMETRY["columns_per_row"]
            assert step.gap_ns >= 0.0

    def test_manysided_rotation_and_validation(self):
        trace = ManySidedHammerTrace(
            n_sides=4, base_row=10, row_stride=2, rows_per_bank=256,
        )
        rows = [trace.next_step(0).row for _ in range(8)]
        assert rows == [10, 12, 14, 16] * 2  # strict N-row rotation
        with pytest.raises(ValueError):
            ManySidedHammerTrace(n_sides=1)

    def test_plain_and_gzip_fixture_yield_identical_streams(self):
        plain = TraceFileReader(PLAIN_FIXTURE, **GEOMETRY)
        zipped = TraceFileReader(GZIP_FIXTURE, **GEOMETRY)
        assert steps_of(plain) == steps_of(zipped)


class TestTraceFileParsing:
    def write(self, tmp_path, text, name="t.trace"):
        path = tmp_path / name
        path.write_text(text)
        return path

    def test_address_formats_and_mapping(self, tmp_path):
        # line 0x40*17 = byte 0x440 -> line 17: column 1, row-index 1,
        # bank 1, row 0 under the interleaved mapping.
        path = self.write(tmp_path, "0x440 R\n1088 W\n")
        reader = TraceFileReader(path, **GEOMETRY, loop=False)
        first = reader.next_step(0)
        second = reader.next_step(0)
        assert (first.bank, first.row, first.column) == (1, 0, 1)
        assert first.is_write is False
        assert (second.bank, second.row, second.column) == (1, 0, 1)
        assert second.is_write is True

    def test_cycle_stamps_become_gaps(self, tmp_path):
        path = self.write(tmp_path, "0x0 R 100\n0x40 R 180\n0x80 R 180\n")
        reader = TraceFileReader(path, clock_ns=0.5, **GEOMETRY)
        assert reader.next_step(0).gap_ns == 0.0  # no previous stamp
        assert reader.next_step(0).gap_ns == pytest.approx(40.0)
        assert reader.next_step(0).gap_ns == 0.0  # non-advancing stamp

    def test_stamps_ignored_without_clock(self, tmp_path):
        path = self.write(tmp_path, "0x0 R 100\n0x40 R 9000\n")
        reader = TraceFileReader(path, default_gap_ns=3.0, **GEOMETRY)
        assert reader.next_step(0).gap_ns == 3.0
        assert reader.next_step(0).gap_ns == 3.0

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = self.write(tmp_path, "# c\n\n// c\n0x0 R\n")
        reader = TraceFileReader(path, **GEOMETRY)
        assert reader.next_step(0).is_write is False
        assert reader.lines_read == 4

    def test_looping_restarts_the_file(self, tmp_path):
        path = self.write(tmp_path, "0x0 R\n0x40 W\n")
        reader = TraceFileReader(path, **GEOMETRY)
        flags = [reader.next_step(0).is_write for _ in range(5)]
        assert flags == [False, True, False, True, False]
        assert reader.requests_emitted == 5

    def test_no_loop_exhausts(self, tmp_path):
        path = self.write(tmp_path, "0x0 R\n")
        reader = TraceFileReader(path, loop=False, **GEOMETRY)
        reader.next_step(0)
        with pytest.raises(TraceExhausted):
            reader.next_step(0)

    @pytest.mark.parametrize("line, fragment", [
        ("zzz R", "bad address"),
        ("0x0 FETCH", "bad request type"),
        ("0x0 R abc", "bad cycle stamp"),
        ("0x0", "expected"),
    ])
    def test_parse_errors_name_file_and_line(self, tmp_path, line, fragment):
        path = self.write(tmp_path, f"# header\n{line}\n")
        reader = TraceFileReader(path, **GEOMETRY)
        with pytest.raises(TraceParseError) as exc:
            reader.next_step(0)
        assert f"{path}:2" in str(exc.value)
        assert fragment in str(exc.value)

    def test_empty_file_raises(self, tmp_path):
        path = self.write(tmp_path, "# only comments\n\n")
        reader = TraceFileReader(path, **GEOMETRY)
        with pytest.raises(TraceParseError, match="no request lines"):
            reader.next_step(0)

    def test_constructor_validation(self, tmp_path):
        path = self.write(tmp_path, "0x0 R\n")
        with pytest.raises(ValueError):
            TraceFileReader(path, total_banks=0)
        with pytest.raises(ValueError):
            TraceFileReader(path, clock_ns=0.0)
        with pytest.raises(ValueError):
            TraceFileReader(path, default_gap_ns=-1.0)

    def test_readers_for_cores(self, tmp_path):
        path = self.write(tmp_path, "0x0 R\n")
        readers = readers_for_cores([path], 3, **GEOMETRY)
        assert len(readers) == 3
        assert len({id(r) for r in readers}) == 3  # independent positions
        with pytest.raises(ValueError):
            readers_for_cores([path, path], 3, **GEOMETRY)


class TestStreamingMemoryUse:
    def test_gzip_trace_streams_through_the_engine(self, tmp_path):
        # A trace whose *uncompressed* size is far above the chunk
        # size must flow through a whole simulation while the line
        # buffer stays within a couple of chunks: the reader streams,
        # it never slurps the file.
        lines = []
        for index in range(24_000):
            address = (index * 0x1040) % (1 << 26)
            kind = "R" if index % 3 else "W"
            lines.append(f"0x{address:x} {kind} {index * 4}\n")
        payload = "".join(lines).encode("ascii")
        path = tmp_path / "big.trace.gz"
        with gzip.GzipFile(path, "wb", mtime=0) as handle:
            handle.write(payload)
        assert len(payload) > 4 * 64 * 1024

        config = SystemConfig(
            cores=2, ranks=1, bank_groups=2, banks_per_group=2,
            rows_per_bank=4096, requests_per_core=3000, mlp_per_core=2,
        )
        traces = readers_for_cores(
            [path], config.cores,
            total_banks=config.total_banks,
            rows_per_bank=config.rows_per_bank,
            columns_per_row=config.columns_per_row,
            clock_ns=0.625,
        )
        result, report = check_run(MemorySystem(config, traces))
        assert report.ok, report.render_text()
        assert sum(core.completed_requests for core in result.cores) == 6000
        for trace in traces:
            assert trace.requests_emitted == 3000
            assert 0 < trace.peak_buffer_bytes <= 2 * 64 * 1024
            assert trace.peak_buffer_bytes < len(payload) // 4
