"""Tests for the five read-disturbance defenses and their substrates."""

import numpy as np
import pytest

from repro.core.profile import VulnerabilityProfile
from repro.core.svard import Svard
from repro.defenses import DEFENSE_CLASSES
from repro.defenses.aqua import Aqua
from repro.defenses.base import (
    CounterTraffic,
    GlobalThreshold,
    RowMigration,
    RowSwap,
    SvardThresholds,
    ThrottleDelay,
    VictimRefresh,
)
from repro.defenses.blockhammer import BlockHammer
from repro.defenses.bloom import CountingBloomFilter, DualCountingBloomFilter
from repro.defenses.hydra import Hydra
from repro.defenses.para import Para
from repro.defenses.rrs import MisraGriesTracker, RandomizedRowSwap
from repro.faults.modules import module_by_label


class TestCountingBloomFilter:
    def test_never_underestimates(self):
        filt = CountingBloomFilter(n_counters=256, n_hashes=4, seed=0)
        for _ in range(50):
            filt.insert(42)
        for _ in range(5):
            filt.insert(43)
        assert filt.estimate(42) >= 50
        assert filt.estimate(43) >= 5

    def test_clear(self):
        filt = CountingBloomFilter(seed=0)
        filt.insert(1)
        filt.clear()
        assert filt.estimate(1) == 0

    def test_total_insertions(self):
        filt = CountingBloomFilter(seed=0)
        for i in range(30):
            filt.insert(i)
        assert filt.total_insertions == 30

    def test_dual_filter_overlapping_history(self):
        dual = DualCountingBloomFilter(n_counters=256, seed=0)
        for _ in range(10):
            dual.insert(7)
        dual.rotate()
        # History from before the boundary is still visible.
        assert dual.estimate(7) >= 10
        dual.rotate()
        # After two rotations the old history has expired.
        assert dual.estimate(7) == 0

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(n_counters=0)


class TestMisraGries:
    def test_tracks_heavy_hitter(self):
        tracker = MisraGriesTracker(entries=4)
        for i in range(100):
            tracker.observe(1)
            tracker.observe(i + 10)
        assert tracker.counts.get(1, 0) > 20

    def test_reset(self):
        tracker = MisraGriesTracker(entries=4)
        tracker.observe(5)
        tracker.reset(5)
        assert 5 not in tracker.counts

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            MisraGriesTracker(entries=0)


class TestPara:
    def test_probability_inverse_in_threshold(self):
        para = Para(hc_first=1000)
        assert para.refresh_probability(1000) > para.refresh_probability(10000)

    def test_probability_clamps_at_one(self):
        para = Para(hc_first=10)
        assert para.refresh_probability(10) == 1.0

    def test_refresh_rate_matches_probability(self):
        para = Para(hc_first=500, seed=1)
        refreshes = 0
        for i in range(20000):
            for m in para.on_activation(0, 100, i * 50.0):
                assert isinstance(m, VictimRefresh)
                refreshes += len(m.rows)
        expected = 2 * 20000 * para.refresh_probability(500)
        assert refreshes == pytest.approx(expected, rel=0.1)

    def test_probabilistic_security(self):
        """Within T hammers of one victim, a refresh lands w.h.p."""
        para = Para(hc_first=2000, seed=3)
        misses = 0
        trials = 200
        for trial in range(trials):
            hit = False
            for i in range(2000):
                for m in para.on_activation(0, 50, i * 50.0):
                    if 49 in m.rows or 51 in m.rows:
                        hit = True
                        break
                if hit:
                    break
            misses += 0 if hit else 1
        assert misses == 0  # failure odds ~2^-80 per trial

    def test_edge_row_single_victim(self):
        para = Para(hc_first=10, seed=0)
        mitigations = para.on_activation(0, 0, 0.0)
        assert mitigations[0].rows == (1,)


class TestBlockHammer:
    def test_no_throttle_below_blacklist(self):
        defense = BlockHammer(hc_first=1000, seed=0)
        for i in range(100):
            assert defense.on_activation(0, 5, i * 50.0) == []

    def test_throttles_hot_row(self):
        defense = BlockHammer(hc_first=1000, seed=0)
        throttled = False
        now = 0.0
        for _ in range(600):
            for m in defense.on_activation(0, 5, now):
                assert isinstance(m, ThrottleDelay)
                throttled = True
                now += m.delay_ns
            now += 50.0
        assert throttled

    def test_throttle_caps_epoch_activation_count(self):
        """Security: a hammered row cannot exceed quota in an epoch."""
        epoch = 1_000_000.0  # small epoch for a fast test
        defense = BlockHammer(hc_first=512, epoch_ns=epoch, seed=0)
        now, activations = 0.0, 0
        while now < epoch:
            delay = sum(
                m.delay_ns
                for m in defense.on_activation(0, 5, now)
                if isinstance(m, ThrottleDelay)
            )
            now += 50.0 + delay
            if now < epoch:
                activations += 1
        quota = defense.quota_fraction * 512
        # The Bloom filter overestimates, so the cap holds with margin.
        assert activations <= quota + defense.blacklist_fraction * 512 + 1

    def test_never_refreshes(self):
        defense = BlockHammer(hc_first=100, seed=0)
        for i in range(500):
            for m in defense.on_activation(0, 5, i * 50.0):
                assert not isinstance(m, VictimRefresh)

    def test_epoch_rotation_forgets_history(self):
        defense = BlockHammer(hc_first=400, seed=0)
        for i in range(300):
            defense.on_activation(0, 5, i * 50.0)
        defense.on_refresh_window(1e9)
        defense.on_refresh_window(2e9)
        assert defense.on_activation(0, 5, 2.1e9) == []

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BlockHammer(hc_first=100, blacklist_fraction=0.9, quota_fraction=0.5)


class TestHydra:
    def test_quiet_groups_cost_nothing(self):
        defense = Hydra(hc_first=10000, seed=0)
        for row in range(0, 1000, 7):
            assert defense.on_activation(0, row, 50.0 * row) == []

    def test_escalation_produces_counter_traffic(self):
        defense = Hydra(hc_first=1000, rcc_entries=4, seed=0)
        traffic = 0
        # Hammer 12 rows in distinct groups hard enough to escalate
        # them all, then keep cycling to thrash the 4-entry RCC.
        for i in range(6000):
            row = (i % 12) * defense.group_size
            for m in defense.on_activation(0, row, i * 50.0):
                if isinstance(m, CounterTraffic):
                    traffic += m.reads + m.writes
        assert traffic > 100

    def test_refresh_fires_at_half_threshold(self):
        defense = Hydra(hc_first=400, seed=0)
        refreshes = []
        for i in range(400):
            for m in defense.on_activation(0, 64, i * 50.0):
                if isinstance(m, VictimRefresh):
                    refreshes.append(i)
        assert refreshes, "expected a preventive refresh"
        assert refreshes[0] < 400 * defense.refresh_fraction + 2

    def test_rcc_hit_has_no_traffic(self):
        defense = Hydra(hc_first=400, seed=0)
        # Escalate one group and touch it repeatedly.
        reads = 0
        for i in range(200):
            for m in defense.on_activation(0, 64, i * 50.0):
                if isinstance(m, CounterTraffic):
                    reads += m.reads
        assert reads <= 1  # only the first escalated access misses

    def test_refresh_window_resets(self):
        defense = Hydra(hc_first=400, seed=0)
        for i in range(200):
            defense.on_activation(0, 64, i * 50.0)
        defense.on_refresh_window(1e9)
        assert defense.on_activation(0, 64, 1.1e9) == []


class TestAqua:
    def test_migrates_at_half_threshold(self):
        defense = Aqua(hc_first=100, rows_per_bank=4096, seed=0)
        migrations = []
        for i in range(120):
            for m in defense.on_activation(0, 7, i * 50.0):
                assert isinstance(m, RowMigration)
                migrations.append((i, m))
        assert migrations
        first_index, first = migrations[0]
        assert first_index == int(100 * defense.migrate_fraction) - 1
        assert first.src_row == 7
        assert first.dst_row >= 4096 - defense.quarantine_rows

    def test_quarantine_slots_cycle(self):
        defense = Aqua(hc_first=10, rows_per_bank=4096, seed=0)
        slots = set()
        for i in range(2000):
            for m in defense.on_activation(0, i % 3, i * 50.0):
                slots.add(m.dst_row)
        assert len(slots) <= defense.quarantine_rows

    def test_counter_resets_after_migration(self):
        defense = Aqua(hc_first=100, rows_per_bank=4096, seed=0)
        count = 0
        for i in range(200):
            count += len(defense.on_activation(0, 7, i * 50.0))
        assert count == 4  # 200 activations / (0.5 * 100) per migration


class TestRrs:
    def test_swaps_hot_row(self):
        defense = RandomizedRowSwap(hc_first=600, rows_per_bank=4096, seed=0)
        swaps = []
        for i in range(300):
            for m in defense.on_activation(0, 9, i * 50.0):
                assert isinstance(m, RowSwap)
                swaps.append(m)
        assert swaps
        assert swaps[0].row_a == 9
        assert swaps[0].row_b != 9

    def test_swap_rate_scales_with_threshold(self):
        def swap_count(hc_first):
            defense = RandomizedRowSwap(
                hc_first=hc_first, rows_per_bank=4096, seed=0
            )
            n = 0
            for i in range(6000):
                n += len(defense.on_activation(0, 9, i * 50.0))
            return n

        assert swap_count(600) > swap_count(6000) * 5

    def test_swap_partner_random(self):
        defense = RandomizedRowSwap(hc_first=60, rows_per_bank=4096, seed=0)
        partners = set()
        for i in range(3000):
            for m in defense.on_activation(0, 9, i * 50.0):
                partners.add(m.row_b)
        assert len(partners) > 10


def make_svard_provider(hc_first=1024):
    profile = VulnerabilityProfile.from_ground_truth(
        module_by_label("S0"), banks=(0,), rows_per_bank=2048, seed=0
    ).scaled_to_worst_case(hc_first)
    return SvardThresholds(Svard.build(profile)), profile


class TestSvardIntegration:
    @pytest.mark.parametrize("name", sorted(DEFENSE_CLASSES))
    def test_all_defenses_accept_svard_thresholds(self, name):
        provider, _ = make_svard_provider()
        defense = DEFENSE_CLASSES[name](
            1024, thresholds=provider, rows_per_bank=2048, seed=0
        )
        for i in range(200):
            defense.on_activation(0, 100, i * 50.0)

    def test_svard_reduces_para_refreshes(self):
        provider, profile = make_svard_provider(hc_first=256)
        base = Para(256, rows_per_bank=2048, seed=1)
        svard = Para(256, thresholds=provider, rows_per_bank=2048, seed=1)
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 2048, size=4000)
        for i, row in enumerate(rows):
            base.on_activation(0, int(row), i * 50.0)
            svard.on_activation(0, int(row), i * 50.0)
        assert svard.stats.victim_refreshes < base.stats.victim_refreshes * 0.85

    def test_svard_reduces_rrs_swaps(self):
        provider, _ = make_svard_provider(hc_first=256)
        base = RandomizedRowSwap(256, rows_per_bank=2048, seed=1)
        svard = RandomizedRowSwap(
            256, thresholds=provider, rows_per_bank=2048, seed=1
        )
        for i in range(4000):
            row = (i % 16) * 64  # hammer a rotating set of rows
            base.on_activation(0, row, i * 50.0)
            svard.on_activation(0, row, i * 50.0)
        assert svard.stats.swaps <= base.stats.swaps
        assert svard.stats.swaps < base.stats.swaps

    def test_svard_never_relaxes_below_worst_case(self):
        """Weakest-bin rows keep exactly the worst-case treatment."""
        provider, profile = make_svard_provider(hc_first=256)
        weakest_bank = 0
        values = profile.values(0)
        weakest_row = int(np.argmin(values))
        assert provider.threshold(weakest_bank, weakest_row) == pytest.approx(
            profile.worst_case
        )

    def test_deterministic_defenses_fire_by_scaled_threshold(self):
        """Security with Svärd: a row's preventive action still fires
        within its own (bin) threshold."""
        provider, profile = make_svard_provider(hc_first=1024)
        defense = Aqua(1024, thresholds=provider, rows_per_bank=2048, seed=0)
        row = 700
        own_threshold = min(
            provider.threshold(0, row - 1), provider.threshold(0, row + 1)
        )
        fired_at = None
        for i in range(int(own_threshold) + 10):
            if defense.on_activation(0, row, i * 50.0):
                fired_at = i + 1
                break
        assert fired_at is not None
        assert fired_at <= own_threshold * defense.migrate_fraction + 1
