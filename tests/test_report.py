"""The HTML report pipeline: builder, renderer, CLI, doc sync.

The golden snapshot here is **structure-level**: the nested tag /
class / id skeleton of the report page (tests/golden/
report_structure.json), not its bytes -- so numeric jitter in SVG
coordinates or copy edits in captions cannot break it, while a lost
section, table, chart, or provenance block does.  Regenerate after an
intentional page-structure change with::

    PYTHONPATH=src python -m pytest tests/test_report.py --update-golden

The same flag refreshes the generated `runner --help-all` CLI
reference embedded in EXPERIMENTS.md (test_help_all_dump_in_sync).
"""

import json
import re
from html.parser import HTMLParser
from pathlib import Path

import pytest

from repro.experiments import runner
from repro.experiments.api import (
    PlotSpec,
    ResultSet,
    ResultTable,
    TableBlock,
    TextBlock,
)
from repro.experiments.aggregate import ResultSetAggregate
from repro.experiments.render import get_renderer, renderer_names
from repro.experiments.report import build_report

GOLDEN = Path(__file__).parent / "golden" / "report_structure.json"
EXPERIMENTS_MD = Path(__file__).parent.parent / "EXPERIMENTS.md"

#: HTML void elements plus SVG leaf shapes (no closing tag required).
VOID_TAGS = frozenset({
    "meta", "br", "hr", "img", "input", "link",
    "circle", "rect", "line", "path", "polyline", "polygon",
})


class StructureParser(HTMLParser):
    """Reduces a page to its nested (tag, class/id) skeleton."""

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.root = ["document", None, []]
        self.stack = [self.root]
        self.errors = []

    def _node(self, tag, attrs):
        attrs = dict(attrs)
        signature = attrs.get("class") or attrs.get("id")
        return [tag, signature, []]

    def handle_starttag(self, tag, attrs):
        node = self._node(tag, attrs)
        self.stack[-1][2].append(node)
        if tag not in VOID_TAGS:
            self.stack.append(node)

    def handle_startendtag(self, tag, attrs):
        self.stack[-1][2].append(self._node(tag, attrs))

    def handle_endtag(self, tag):
        if tag in VOID_TAGS:
            return
        if len(self.stack) < 2 or self.stack[-1][0] != tag:
            self.errors.append(f"mismatched </{tag}>")
            return
        self.stack.pop()


def structure(html: str):
    parser = StructureParser()
    parser.feed(html)
    parser.close()
    assert not parser.errors, parser.errors
    assert len(parser.stack) == 1, [n[0] for n in parser.stack]
    return parser.root


def assert_self_contained(html: str) -> None:
    """No fetched external resources (xmlns identifiers are fine)."""
    external = re.findall(
        r'(?:src|href)\s*=\s*"(?:https?:)?//[^"]*"', html
    )
    assert external == [], external
    assert "<script" not in html


def seeded_section(seed: int) -> ResultSet:
    return ResultSet(
        experiment="fig12",
        title="Fig 12: demo",
        scalars={"n_mixes": 2, "headline": 1.0 + seed / 10},
        tables=(ResultTable(
            name="metrics",
            headers=("defense", "hc_first", "weighted_speedup"),
            rows=(("PARA", 64, 1.0 + seed / 10),
                  ("PARA", 128, 2.0 + seed / 10)),
        ),),
        layout=(
            TextBlock("Fig 12: demo\n"),
            TableBlock(
                headers=("defense", "value"),
                rows=(("PARA", f"{1.0 + seed / 10:.3f}"),),
            ),
        ),
        plots=(PlotSpec(
            name="speedup", kind="line", table="metrics",
            x="hc_first", y=("weighted_speedup",), logx=True,
        ),),
        meta={
            "paper_ref": "Fig. 12",
            "scale": {"seed": seed, "n_mixes": 2},
            "recipe": {
                "name": "demo-grid", "version": 1,
                "seed": seed, "smoke": False,
            },
            "provenance": {
                "backend": "serial",
                "cache_dir": None,
                "tasks": {
                    "submitted": 4, "cache_hits": 2, "executed": 2,
                },
            },
        },
    )


def scalar_only_section() -> ResultSet:
    return ResultSet(
        experiment="sec64",
        title="Costs",
        scalars={"area_mm2": 0.056, "ok": True},
        meta={"paper_ref": "Sec. 6.4"},
    )


def report_sections():
    aggregated = ResultSetAggregate.from_result_sets(
        [seeded_section(0), seeded_section(1)]
    ).to_result_set()
    return [aggregated, scalar_only_section()]


class TestBuildReport:
    def test_page_is_self_contained_and_well_formed(self):
        html = build_report(report_sections())
        assert_self_contained(html)
        structure(html)  # asserts balanced tags

    def test_sections_toc_and_anchors(self):
        html = build_report(report_sections())
        assert html.count('<section class="experiment"') == 2
        assert '<nav class="toc">' in html
        assert 'href="#fig12"' in html and 'id="fig12"' in html

    def test_single_section_page_has_no_toc(self):
        html = build_report([scalar_only_section()])
        assert '<nav class="toc">' not in html

    def test_provenance_block_contents(self):
        html = build_report(report_sections())
        assert "demo-grid v1" in html
        assert "population stddev" in html
        # scale fingerprint: 12 hex chars from stable_hash
        assert re.search(r"<dd>[0-9a-f]{12}</dd>", html)

    def test_per_seed_provenance_renders_as_counts_not_list_repr(self):
        """Seeds with different cache luck merge into per-seed counts
        (``0+4``), never a Python list repr in the page."""
        cold, warm = seeded_section(0), seeded_section(1)
        cold.meta["provenance"]["tasks"] = {
            "submitted": 4, "cache_hits": 0, "executed": 4,
        }
        warm.meta["provenance"]["tasks"] = {
            "submitted": 4, "cache_hits": 4, "executed": 0,
        }
        aggregated = ResultSetAggregate.from_result_sets(
            [cold, warm]
        ).to_result_set()
        html = build_report([aggregated])
        assert "4 submitted / 0+4 cache hits / 4+0 executed" in html
        assert "[0, 4]" not in html and "[4, 0]" not in html

    def test_aggregated_section_shows_error_band(self):
        html = build_report(report_sections())
        assert "weighted_speedup_stddev" in html
        assert "<polygon" in html  # the min--max envelope

    def test_scalar_cards(self):
        html = build_report([scalar_only_section()])
        assert 'class="card"' in html
        assert "area_mm2" in html and "0.056" in html

    def test_duplicate_experiments_get_unique_anchors(self):
        html = build_report(
            [scalar_only_section(), scalar_only_section()]
        )
        assert 'id="sec64"' in html and 'id="sec64-2"' in html

    def test_unicode_titles_survive(self):
        section = scalar_only_section()
        section.title = "Svärd köstüm"
        html = build_report([section])
        assert "Svärd köstüm" in html

    def test_empty_report_refuses(self):
        with pytest.raises(ValueError, match="at least one"):
            build_report([])

    def test_broken_plot_degrades_to_error_paragraph(self):
        section = scalar_only_section()
        section.tables = (ResultTable(
            name="t", headers=("x", "y"), rows=(),
        ),)
        section.plots = (PlotSpec(
            name="p", kind="line", table="t", x="x", y=("y",),
        ),)
        html = build_report([section])
        assert 'class="plot-error"' in html
        structure(html)

    def test_golden_structure_snapshot(self, request):
        html = build_report(
            report_sections(), title="Golden report", subtitle="pinned"
        )
        skeleton = structure(html)
        if request.config.getoption("--update-golden"):
            GOLDEN.write_text(json.dumps(skeleton, indent=1) + "\n")
            return
        assert skeleton == json.loads(GOLDEN.read_text()), (
            "report page structure changed; regenerate with "
            "`pytest tests/test_report.py --update-golden` and review "
            "the diff"
        )


class TestHtmlRenderer:
    def test_registered(self):
        assert "html" in renderer_names()
        assert get_renderer("html").suffix == ".html"

    def test_single_result_set_page(self):
        html = get_renderer("html").render(scalar_only_section())
        assert_self_contained(html)
        assert "experiment: sec64" in html

    def test_write(self, tmp_path):
        (path,) = get_renderer("html").write(
            scalar_only_section(), tmp_path
        )
        assert path.name == "sec64.html"
        assert_self_contained(path.read_text())

    def test_cli_html_stdout_is_one_document(self, capsys):
        """Multiple experiments to stdout stitch into a single page
        (mirroring the json single-document guarantee), never
        concatenated standalone pages."""
        code = runner.main([
            "run", "sec64", "table3", "--no-cache", "--format", "html",
            "--rows-per-bank", "256", "--banks", "1",
            "--modules", "H1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("<!DOCTYPE html>") == 1
        assert out.count("</html>") == 1
        assert out.count('<section class="experiment"') == 2
        assert_self_contained(out)

    def test_cli_format_html(self, tmp_path, capsys):
        code = runner.main([
            "run", "sec64", "--format", "html",
            "--out", str(tmp_path), "--no-cache",
        ])
        assert code == 0
        page = (tmp_path / "sec64.html").read_text()
        assert_self_contained(page)
        # Provenance stamped by the CLI shows up in the page.
        assert "backend" in page


class TestReportCommand:
    def write_tree(self, root):
        for seed in (0, 1):
            directory = root / f"seed{seed}"
            directory.mkdir(parents=True)
            artifact = seeded_section(seed)
            (directory / "fig12.json").write_text(
                json.dumps(artifact.to_json_dict())
            )

    def test_stitches_and_aggregates(self, tmp_path, capsys):
        self.write_tree(tmp_path)
        assert runner.main(["report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "report.html" in out and "1 sections" in out
        page = (tmp_path / "report.html").read_text()
        assert_self_contained(page)
        assert "weighted_speedup_mean" in page

    def test_no_aggregate_flag(self, tmp_path, capsys):
        self.write_tree(tmp_path)
        out_file = tmp_path / "flat.html"
        assert runner.main([
            "report", str(tmp_path), "--no-aggregate",
            "--out", str(out_file),
        ]) == 0
        assert "2 sections" in capsys.readouterr().out
        assert out_file.exists()

    def test_missing_path_is_a_clean_error(self, tmp_path, capsys):
        assert runner.main(["report", str(tmp_path / "nope")]) == 1
        assert "no such artifact" in capsys.readouterr().err

    def test_empty_tree_is_a_clean_error(self, tmp_path, capsys):
        assert runner.main(["report", str(tmp_path)]) == 1
        assert "no ResultSet artifacts" in capsys.readouterr().err

    def test_recipe_run_report_requires_out(self, capsys):
        with pytest.raises(SystemExit):
            runner.main(["recipe", "run", "report-smoke", "--report"])
        assert "--report requires --out" in capsys.readouterr().err


class TestRecipeShowLayout:
    def test_show_prints_seed_matrix_and_artifact_dirs(self, capsys):
        assert runner.main(["recipe", "show", "report-smoke"]) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # stdout stays a pure manifest
        assert "seed matrix: 0, 1 (2 seeds)" in captured.err
        assert "DIR/seed0/{fig3,sec64}.<fmt>" in captured.err
        assert "DIR/seed1/{fig3,sec64}.<fmt>" in captured.err
        assert "report.html" in captured.err


HELP_BEGIN = "<!-- runner-help-all:begin -->"
HELP_END = "<!-- runner-help-all:end -->"


class TestHelpAll:
    def test_help_all_flag(self, capsys):
        assert runner.main(["--help-all"]) == 0
        out = capsys.readouterr().out
        for fragment in (
            "runner run", "runner worker", "runner report",
            "recipe run", "--queue-dir", "--no-aggregate",
        ):
            assert fragment in out, fragment

    def test_every_flag_has_help_text(self):
        for build in (
            runner._list_parser, runner._run_parser,
            runner._recipe_list_parser, runner._recipe_show_parser,
            runner._recipe_run_parser, runner._worker_parser,
            runner._report_parser,
        ):
            parser = build()
            for action in parser._actions:
                assert action.help, (
                    f"{parser.prog}: {action.dest} has no help text"
                )

    def test_help_all_dump_in_sync(self, request):
        """EXPERIMENTS.md embeds the generated `--help-all` dump; this
        pins it to the live CLI so the docs cannot drift."""
        dump = runner.help_all_text()
        payload = f"{HELP_BEGIN}\n```text\n{dump}```\n{HELP_END}"
        document = EXPERIMENTS_MD.read_text()
        pattern = re.compile(
            re.escape(HELP_BEGIN) + ".*?" + re.escape(HELP_END), re.S
        )
        assert pattern.search(document), (
            "EXPERIMENTS.md lost its runner-help-all markers"
        )
        if request.config.getoption("--update-golden"):
            EXPERIMENTS_MD.write_text(pattern.sub(
                lambda _: payload, document
            ))
            return
        assert pattern.search(document).group(0) == payload, (
            "the CLI reference in EXPERIMENTS.md is stale; regenerate "
            "with `pytest tests/test_report.py --update-golden`"
        )
