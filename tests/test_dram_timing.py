"""Unit tests for the timing presets across device generations."""

import dataclasses

import pytest

from repro.dram.timing import (
    DDR4_2400,
    DDR4_2666,
    DDR4_2933,
    DDR4_3200,
    DDR5_4800,
    GENERATIONS,
    LPDDR4_3200,
    REFRESH_ALL_BANK,
    REFRESH_PER_BANK,
    REFRESH_SAME_BANK,
    TimingParameters,
    all_device_names,
    device_for,
    timing_for_speed,
)

#: Every preset of every generation, keyed by device name.
ALL_PRESETS = {name: device_for(name) for name in all_device_names()}

#: Fields derate_for_temperature is allowed to touch: the refresh
#: window and the refresh cadence scale with retention, nothing else.
REFRESH_WINDOW_FIELDS = {"tREFI", "tREFW"}


class TestPresets:
    def test_all_speed_grades_available(self):
        for speed in (2400, 2666, 2933, 3200):
            assert timing_for_speed(speed).data_rate_mts == speed

    def test_unknown_speed_raises(self):
        with pytest.raises(ValueError) as excinfo:
            timing_for_speed(1600)
        message = str(excinfo.value)
        assert "1600" in message
        for grade in ("2400", "2666", "2933", "3200"):
            assert grade in message

    def test_trc_is_tras_plus_trp(self):
        for preset in (DDR4_2400, DDR4_2666, DDR4_2933, DDR4_3200):
            assert preset.tRC == pytest.approx(preset.tRAS + preset.tRP)

    def test_faster_grade_has_shorter_clock(self):
        assert DDR4_3200.tCK < DDR4_2933.tCK < DDR4_2666.tCK < DDR4_2400.tCK

    def test_refresh_window_default_64ms(self):
        assert DDR4_3200.tREFW == pytest.approx(64_000_000.0)

    def test_refresh_interval_default(self):
        assert DDR4_3200.tREFI == pytest.approx(7800.0)


class TestGenerationConsistency:
    """Every preset of every generation honours the data-sheet algebra."""

    @pytest.mark.parametrize("name", sorted(ALL_PRESETS))
    def test_trc_is_tras_plus_trp(self, name):
        preset = ALL_PRESETS[name]
        assert preset.tRC == pytest.approx(preset.tRAS + preset.tRP)

    @pytest.mark.parametrize("name", sorted(ALL_PRESETS))
    def test_tck_matches_data_rate(self, name):
        # DDR transfers twice per clock: tCK [ns] = 2000 / MT/s.
        preset = ALL_PRESETS[name]
        assert preset.tCK == pytest.approx(
            2000.0 / preset.data_rate_mts, rel=1e-3
        )

    @pytest.mark.parametrize("name", sorted(ALL_PRESETS))
    def test_all_parameters_positive(self, name):
        preset = ALL_PRESETS[name]
        for field in dataclasses.fields(preset):
            value = getattr(preset, field.name)
            assert value > 0, f"{name}.{field.name} = {value!r}"

    @pytest.mark.parametrize("name", sorted(ALL_PRESETS))
    def test_derating_halves_only_refresh_window_fields(self, name):
        preset = ALL_PRESETS[name]
        hot = preset.derate_for_temperature(90.0)
        assert type(hot) is type(preset)
        for field in dataclasses.fields(preset):
            cold_value = getattr(preset, field.name)
            hot_value = getattr(hot, field.name)
            if field.name in REFRESH_WINDOW_FIELDS:
                assert hot_value == pytest.approx(cold_value / 2)
            else:
                assert hot_value == cold_value, field.name

    def test_device_names_cover_every_generation_preset(self):
        expected = {
            f"{generation.name}-{rate}"
            for generation in GENERATIONS.values()
            for rate in generation.rates
        }
        assert set(all_device_names()) == expected

    def test_generation_structure(self):
        assert DDR4_3200.has_bank_groups
        assert DDR4_3200.refresh_granularity == REFRESH_ALL_BANK
        assert not LPDDR4_3200.has_bank_groups
        assert LPDDR4_3200.refresh_granularity == REFRESH_PER_BANK
        assert DDR5_4800.has_bank_groups
        assert DDR5_4800.refresh_granularity == REFRESH_SAME_BANK

    def test_refresh_slices_per_granularity(self):
        kwargs = dict(banks_per_rank=16, banks_per_group=4)
        assert DDR4_3200.refresh_slices(**kwargs) == 1
        assert LPDDR4_3200.refresh_slices(**kwargs) == 16
        assert DDR5_4800.refresh_slices(**kwargs) == 4

    def test_lpddr4_refresh_latency_is_per_bank(self):
        assert LPDDR4_3200.refresh_latency_ns == LPDDR4_3200.tRFCpb
        assert LPDDR4_3200.tRFCpb < LPDDR4_3200.tRFCab
        assert LPDDR4_3200.tRFC == LPDDR4_3200.tRFCab

    def test_ddr5_refresh_latency_is_same_bank(self):
        assert DDR5_4800.refresh_latency_ns == DDR5_4800.tRFCsb
        assert DDR5_4800.tRFCsb < DDR5_4800.tRFC


class TestDeviceFor:
    def test_name_lookup_is_case_insensitive(self):
        assert device_for("lpddr4-3200") is LPDDR4_3200
        assert device_for("DDR5-4800") is DDR5_4800

    def test_bare_generation_uses_default_rate(self):
        assert device_for("DDR4") is DDR4_3200
        assert device_for("DDR5") is DDR5_4800

    def test_integer_and_digit_string_mean_ddr4(self):
        assert device_for(2666) is DDR4_2666
        assert device_for("2933") is DDR4_2933

    def test_unknown_device_lists_alternatives(self):
        with pytest.raises(ValueError) as excinfo:
            device_for("DDR3-1600")
        message = str(excinfo.value)
        for name in all_device_names():
            assert name in message

    def test_timing_for_speed_is_a_ddr4_shim(self):
        for speed in (2400, 2666, 2933, 3200):
            assert timing_for_speed(speed) is device_for(speed)


class TestTemperatureDerating:
    def test_normal_range_unchanged(self):
        assert DDR4_3200.derate_for_temperature(80.0) is DDR4_3200
        assert DDR4_3200.derate_for_temperature(85.0) is DDR4_3200

    def test_extended_range_halves_refresh(self):
        hot = DDR4_3200.derate_for_temperature(90.0)
        assert hot.tREFI == pytest.approx(DDR4_3200.tREFI / 2)
        assert hot.tREFW == pytest.approx(DDR4_3200.tREFW / 2)

    def test_extended_range_keeps_core_timings(self):
        hot = DDR4_3200.derate_for_temperature(95.0)
        assert hot.tRCD == DDR4_3200.tRCD
        assert hot.tRAS == DDR4_3200.tRAS


class TestActivationBudget:
    def test_activations_per_window_order_of_magnitude(self):
        # 64 ms / ~45.75 ns per row cycle is roughly 1.4M activations:
        # the reason RowHammer at HC_first <= 128K is practical at all.
        n = DDR4_3200.activations_per_refresh_window()
        assert 1_000_000 < n < 2_000_000

    def test_budget_shrinks_when_hot(self):
        hot = DDR4_3200.derate_for_temperature(90.0)
        assert (
            hot.activations_per_refresh_window()
            < DDR4_3200.activations_per_refresh_window()
        )

    @pytest.mark.parametrize("name", sorted(ALL_PRESETS))
    def test_floor_truncation_contract(self, name):
        # The budget is a whole number of row cycles that *fit* in the
        # window: floor division, never rounding up a partial cycle.
        preset = ALL_PRESETS[name]
        assert preset.activations_per_refresh_window() == int(
            preset.tREFW // preset.tRC
        )

    def test_ddr5_budget_uses_32ms_window(self):
        # DDR5 halves tREFW to 32 ms, so at a comparable row-cycle time
        # the activation budget is roughly half the DDR4 figure.
        assert DDR5_4800.tREFW == pytest.approx(32_000_000.0)
        assert DDR5_4800.activations_per_refresh_window() == int(
            32_000_000.0 // DDR5_4800.tRC
        )
        assert (
            DDR5_4800.activations_per_refresh_window()
            < DDR4_3200.activations_per_refresh_window()
        )
