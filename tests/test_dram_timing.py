"""Unit tests for DDR4 timing parameters."""

import pytest

from repro.dram.timing import (
    DDR4_2400,
    DDR4_2666,
    DDR4_2933,
    DDR4_3200,
    TimingParameters,
    timing_for_speed,
)


class TestPresets:
    def test_all_speed_grades_available(self):
        for speed in (2400, 2666, 2933, 3200):
            assert timing_for_speed(speed).data_rate_mts == speed

    def test_unknown_speed_raises(self):
        with pytest.raises(ValueError) as excinfo:
            timing_for_speed(1600)
        message = str(excinfo.value)
        assert "1600" in message
        for grade in ("2400", "2666", "2933", "3200"):
            assert grade in message

    def test_trc_is_tras_plus_trp(self):
        for preset in (DDR4_2400, DDR4_2666, DDR4_2933, DDR4_3200):
            assert preset.tRC == pytest.approx(preset.tRAS + preset.tRP)

    def test_faster_grade_has_shorter_clock(self):
        assert DDR4_3200.tCK < DDR4_2933.tCK < DDR4_2666.tCK < DDR4_2400.tCK

    def test_refresh_window_default_64ms(self):
        assert DDR4_3200.tREFW == pytest.approx(64_000_000.0)

    def test_refresh_interval_default(self):
        assert DDR4_3200.tREFI == pytest.approx(7800.0)


class TestTemperatureDerating:
    def test_normal_range_unchanged(self):
        assert DDR4_3200.derate_for_temperature(80.0) is DDR4_3200
        assert DDR4_3200.derate_for_temperature(85.0) is DDR4_3200

    def test_extended_range_halves_refresh(self):
        hot = DDR4_3200.derate_for_temperature(90.0)
        assert hot.tREFI == pytest.approx(DDR4_3200.tREFI / 2)
        assert hot.tREFW == pytest.approx(DDR4_3200.tREFW / 2)

    def test_extended_range_keeps_core_timings(self):
        hot = DDR4_3200.derate_for_temperature(95.0)
        assert hot.tRCD == DDR4_3200.tRCD
        assert hot.tRAS == DDR4_3200.tRAS


class TestActivationBudget:
    def test_activations_per_window_order_of_magnitude(self):
        # 64 ms / ~45.75 ns per row cycle is roughly 1.4M activations:
        # the reason RowHammer at HC_first <= 128K is practical at all.
        n = DDR4_3200.activations_per_refresh_window()
        assert 1_000_000 < n < 2_000_000

    def test_budget_shrinks_when_hot(self):
        hot = DDR4_3200.derate_for_temperature(90.0)
        assert (
            hot.activations_per_refresh_window()
            < DDR4_3200.activations_per_refresh_window()
        )
