"""HTTP experiment service: routing, submissions, and read atomicity.

A real ``ThreadingHTTPServer`` binds an ephemeral port for every test
(no mocked sockets -- the request path under test includes the
stdlib's own header and body plumbing).  The submission tests use a
tiny one-experiment recipe (``sec64``, the seed-independent hardware
cost table) so a full POST -> sweep -> report round-trip stays fast;
the service participates in its own queue, so no external worker
process is needed.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.experiments import runner
from repro.experiments.render import atomic_write_text
from repro.service import (
    ExperimentHTTPServer,
    ExperimentService,
    SubmissionManager,
    service_runs_dir,
)

#: Two seeds of the hardware-cost table: the cheapest real recipe.
TINY_MANIFEST = {
    "format": 1,
    "name": "svc-tiny",
    "version": 1,
    "description": "cheap service round-trip",
    "experiments": ["sec64"],
    "seeds": [0, 1],
}


@pytest.fixture
def httpd(tmp_path):
    service = ExperimentService(
        tmp_path / "cache", participate=True, log=None
    )
    server = ExperimentHTTPServer(("127.0.0.1", 0), service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


def get(server, path):
    """``(status, body bytes)`` -- error statuses returned, not raised."""
    url = f"http://127.0.0.1:{server.server_address[1]}{path}"
    try:
        with urllib.request.urlopen(url) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def post(server, path, body: bytes):
    url = f"http://127.0.0.1:{server.server_address[1]}{path}"
    request = urllib.request.Request(url, data=body, method="POST")
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def submit(server, manifest: dict):
    status, body = post(server, "/runs", json.dumps(manifest).encode())
    assert status == 202, body
    return json.loads(body)


def finished_record(server, run_id: str) -> dict:
    assert server.service.submissions.wait_idle(timeout=120)
    status, body = get(server, f"/runs/{run_id}")
    assert status == 200
    return json.loads(body)


# ----------------------------------------------------------------------
# Read-side routing
# ----------------------------------------------------------------------


class TestReadEndpoints:
    def test_healthz_on_an_empty_service(self, httpd):
        status, body = get(httpd, "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["tasks"] == {
            "pending": 0, "leased": 0, "failed": 0, "results_cached": 0,
        }
        assert health["workers"] == {"live": 0, "stale": 0}
        assert health["runs"] == {}

    def test_queue_endpoint_is_the_status_snapshot(self, httpd):
        status, body = get(httpd, "/queue")
        assert status == 200
        snapshot = json.loads(body)
        # Same document `runner queue status --json` prints.
        assert {"tasks", "workers", "leases", "failures",
                "throughput"} <= set(snapshot)

    def test_recipes_lists_the_registry(self, httpd):
        status, body = get(httpd, "/recipes")
        assert status == 200
        recipes = json.loads(body)
        assert "report-smoke" in recipes
        assert recipes["report-smoke"]["experiments"] == ["fig3", "sec64"]

    def test_landing_page_serves_html(self, httpd):
        status, body = get(httpd, "/")
        assert status == 200
        page = body.decode()
        assert page.startswith("<!DOCTYPE html>")
        assert "No runs yet" in page
        assert "report-smoke" in page

    def test_runs_empty_and_unknown(self, httpd):
        assert json.loads(get(httpd, "/runs")[1]) == []
        assert get(httpd, "/runs/0001-nope")[0] == 404
        assert get(httpd, "/nothing/here")[0] == 404


# ----------------------------------------------------------------------
# Submission validation (the 400 surface)
# ----------------------------------------------------------------------


class TestSubmissionValidation:
    def test_non_json_body_rejected(self, httpd):
        status, body = post(httpd, "/runs", b"not json {")
        assert status == 400
        assert "not JSON" in json.loads(body)["error"]

    def test_empty_body_rejected(self, httpd):
        assert post(httpd, "/runs", b"")[0] == 400

    def test_unknown_recipe_name_rejected(self, httpd):
        status, body = post(
            httpd, "/runs", json.dumps({"recipe": "nope"}).encode()
        )
        assert status == 400
        assert "unknown recipe" in json.loads(body)["error"]

    def test_unrecognized_manifest_rejected(self, httpd):
        status, body = post(
            httpd, "/runs", json.dumps({"name": "x"}).encode()
        )
        assert status == 400
        assert "manifest" in json.loads(body)["error"]

    def test_manifest_with_unknown_experiment_rejected(self, httpd):
        """Validated against the live registry at POST time: the
        service must 400, not accept a doomed run."""
        manifest = dict(TINY_MANIFEST, experiments=["not-a-figure"])
        status, body = post(httpd, "/runs", json.dumps(manifest).encode())
        assert status == 400
        assert "unknown experiment" in json.loads(body)["error"]
        assert json.loads(get(httpd, "/runs")[1]) == []  # no orphan record

    def test_smoke_must_be_boolean(self, httpd):
        manifest = dict(TINY_MANIFEST, smoke="yes")
        status, body = post(httpd, "/runs", json.dumps(manifest).encode())
        assert status == 400

    def test_post_to_unknown_route(self, httpd):
        assert post(httpd, "/elsewhere", b"{}")[0] == 404


# ----------------------------------------------------------------------
# The full round-trip: POST -> sweep -> served artifacts
# ----------------------------------------------------------------------


class TestSubmissionRoundTrip:
    def test_manifest_sweep_to_done(self, httpd, tmp_path):
        accepted = submit(httpd, TINY_MANIFEST)
        run_id = accepted["run"]["id"]
        assert accepted["run"]["state"] == "queued"
        assert accepted["url"] == f"/runs/{run_id}"
        assert run_id.endswith("-svc-tiny")

        record = finished_record(httpd, run_id)
        assert record["state"] == "done"
        assert record["failed_cells"] == []
        assert record["report"] == "report.html"
        assert sorted(record["artifacts"]) == [
            "seed0/sec64.json", "seed1/sec64.json",
        ]

        status, body = get(httpd, f"/runs/{run_id}/report.html")
        assert status == 200
        assert b"svc-tiny v1" in body
        status, body = get(httpd, f"/runs/{run_id}/seed0/sec64.json")
        assert status == 200
        artifact = json.loads(body)
        assert artifact["meta"]["recipe"] == {
            "name": "svc-tiny", "version": 1, "seed": 0, "smoke": False,
        }

    def test_served_artifacts_match_the_cli_modulo_provenance(
        self, httpd, tmp_path
    ):
        """The acceptance bar: a sweep POSTed to the service and the
        same recipe under ``runner recipe run`` produce identical
        artifacts except for ``meta.provenance`` (which records *how*
        each was computed, and legitimately differs)."""
        run_id = submit(httpd, TINY_MANIFEST)["run"]["id"]
        record = finished_record(httpd, run_id)
        assert record["state"] == "done"

        manifest_path = tmp_path / "tiny.json"
        manifest_path.write_text(json.dumps(TINY_MANIFEST))
        out_dir = tmp_path / "cli-out"
        assert runner.main([
            "recipe", "run", str(manifest_path),
            "--no-cache", "--format", "json", "--out", str(out_dir),
        ]) == 0

        for artifact in record["artifacts"]:
            _, served = get(httpd, f"/runs/{run_id}/{artifact}")
            served = json.loads(served)
            local = json.loads((out_dir / artifact).read_text())
            served["meta"].pop("provenance")
            local["meta"].pop("provenance")
            assert served == local, artifact

    def test_registered_recipe_by_name_with_smoke(self, httpd):
        run_id = submit(
            httpd, {"recipe": "report-smoke", "smoke": True}
        )["run"]["id"]
        record = finished_record(httpd, run_id)
        assert record["state"] == "done"
        assert record["smoke"] is True
        assert record["recipe"]["name"] == "report-smoke"
        status, body = get(httpd, f"/runs/{run_id}/report.html")
        assert status == 200
        assert b"smoke scale" in body

    def test_run_records_survive_a_service_restart(self, httpd, tmp_path):
        run_id = submit(httpd, TINY_MANIFEST)["run"]["id"]
        assert finished_record(httpd, run_id)["state"] == "done"
        # A fresh service over the same cache dir: disk is the state.
        reborn = ExperimentService(tmp_path / "cache", log=None)
        records = reborn.submissions.list_runs()
        assert [record["id"] for record in records] == [run_id]
        assert records[0]["state"] == "done"

    def test_run_ids_are_monotonic(self, httpd):
        first = submit(httpd, TINY_MANIFEST)["run"]["id"]
        second = submit(httpd, TINY_MANIFEST)["run"]["id"]
        assert first.startswith("0001-") and second.startswith("0002-")
        assert httpd.service.submissions.wait_idle(timeout=120)


# ----------------------------------------------------------------------
# Artifact confinement
# ----------------------------------------------------------------------


def fabricate_run(cache_dir, run_id="0042-fixture", state="running"):
    """A run directory written by hand: routing tests need a run that
    is *not* finishing underneath them."""
    run_dir = service_runs_dir(cache_dir) / run_id
    (run_dir / "artifacts").mkdir(parents=True)
    (run_dir / "run.json").write_text(json.dumps({
        "format": 1, "id": run_id, "state": state,
        "recipe": {"name": "fixture", "version": 1},
        "smoke": False, "submitted_at": 0.0, "started_at": 0.0,
        "finished_at": None, "error": None, "failed_cells": [],
        "artifacts": [], "report": None,
    }))
    return run_dir / "artifacts"


class TestArtifactConfinement:
    def test_traversal_and_sidecars_unreachable(self, httpd, tmp_path):
        artifacts = fabricate_run(tmp_path / "cache")
        (artifacts / "report.html").write_text("<html>ok</html>")
        (tmp_path / "cache" / "secret.html").write_text("outside")

        assert get(httpd, "/runs/0042-fixture/report.html")[0] == 200
        # The run record itself is /runs/<id>, never a file download;
        # ../ cannot escape the artifact root.
        assert get(httpd, "/runs/0042-fixture/run.json")[0] == 404
        assert get(
            httpd, "/runs/0042-fixture/%2e%2e/run.json"
        )[0] == 404
        assert get(
            httpd, "/runs/0042-fixture/%2e%2e/%2e%2e/%2e%2e/secret.html"
        )[0] == 404

    def test_unlisted_extensions_not_served(self, httpd, tmp_path):
        artifacts = fabricate_run(tmp_path / "cache", "0043-fixture")
        (artifacts / "notes.txt").write_text("internal")
        (artifacts / ".tmp-report.html-x1").write_text("mid-rename")
        assert get(httpd, "/runs/0043-fixture/notes.txt")[0] == 404
        assert get(
            httpd, "/runs/0043-fixture/.tmp-report.html-x1"
        )[0] == 404

    def test_missing_artifact_is_404_not_500(self, httpd, tmp_path):
        fabricate_run(tmp_path / "cache", "0044-fixture")
        assert get(httpd, "/runs/0044-fixture/report.html")[0] == 404


# ----------------------------------------------------------------------
# Read atomicity: GETs racing an active sweep
# ----------------------------------------------------------------------


class TestConcurrentReads:
    def test_reads_during_rewrites_are_never_torn(self, httpd, tmp_path):
        """Hammer GET against a report being atomically rewritten: every
        response must be one complete payload, never a splice.  This is
        the HTTP face of the cache's atomic-rename guarantee -- the
        payloads differ in every 64-byte block, so any torn read would
        fail the set membership below."""
        artifacts = fabricate_run(tmp_path / "cache", "0050-rewrite")
        payloads = [
            (f"<html>{marker * 65536}</html>").encode()
            for marker in ("a", "b")
        ]
        path = artifacts / "report.html"
        atomic_write_text(path, payloads[0].decode())

        stop = threading.Event()
        failures = []

        def writer():
            flip = 0
            while not stop.is_set():
                flip ^= 1
                atomic_write_text(path, payloads[flip].decode())

        def reader():
            for _ in range(40):
                status, body = get(httpd, "/runs/0050-rewrite/report.html")
                if status != 200 or body not in payloads:
                    failures.append((status, len(body)))

        writer_thread = threading.Thread(target=writer, daemon=True)
        writer_thread.start()
        readers = [
            threading.Thread(target=reader) for _ in range(4)
        ]
        for thread in readers:
            thread.start()
        for thread in readers:
            thread.join()
        stop.set()
        writer_thread.join(timeout=10)
        assert failures == []

    def test_record_reads_during_state_flips_parse(self, httpd, tmp_path):
        """run.json is rewritten at every state transition; a polling
        client must always parse a complete record."""
        fabricate_run(tmp_path / "cache", "0051-flip")
        manager = SubmissionManager(tmp_path / "cache", log=None)
        record = manager.get_run("0051-flip")

        stop = threading.Event()
        failures = []

        def writer():
            states = ("queued", "running", "done")
            count = 0
            while not stop.is_set():
                record["state"] = states[count % 3]
                manager._write_record(record)
                count += 1

        def reader():
            for _ in range(60):
                status, body = get(httpd, "/runs/0051-flip")
                try:
                    document = json.loads(body)
                except json.JSONDecodeError:
                    failures.append(body[:80])
                    continue
                if status != 200 or document["id"] != "0051-flip":
                    failures.append((status, document))

        writer_thread = threading.Thread(target=writer, daemon=True)
        writer_thread.start()
        readers = [threading.Thread(target=reader) for _ in range(3)]
        for thread in readers:
            thread.start()
        for thread in readers:
            thread.join()
        stop.set()
        writer_thread.join(timeout=10)
        assert failures == []
