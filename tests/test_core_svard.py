"""Tests for the Svärd mechanism: profiles, binning, metadata, area."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.characterization.runner import (
    CharacterizationConfig,
    CharacterizationRunner,
)
from repro.core.area_model import (
    SvardAreaModel,
    in_dram_overhead_fraction,
    mc_table_access_latency_ns,
    mc_table_area_mm2,
)
from repro.core.binning import MAX_BINS, VulnerabilityBins
from repro.core.profile import VulnerabilityProfile
from repro.core.svard import InDramStore, McTableStore, Svard
from repro.faults.modules import module_by_label


@pytest.fixture
def profile():
    return VulnerabilityProfile.from_ground_truth(
        module_by_label("S0"), banks=(1, 4), rows_per_bank=1024, seed=0
    )


class TestVulnerabilityProfile:
    def test_worst_case(self, profile):
        expected = min(profile.values(b).min() for b in profile.banks)
        assert profile.worst_case == expected

    def test_from_characterization(self):
        spec = module_by_label("M0")
        runner = CharacterizationRunner(
            spec,
            CharacterizationConfig(rows_per_bank=512, banks=(1,), seed=0),
        )
        profile = VulnerabilityProfile.from_characterization(runner.run())
        assert profile.module_label == "M0"
        assert profile.rows_per_bank == 512

    def test_scaling_preserves_shape(self, profile):
        scaled = profile.scaled_to_worst_case(64.0)
        assert scaled.worst_case == pytest.approx(64.0)
        original = profile.values(1)
        new = scaled.values(1)
        ratio = new / original
        assert np.allclose(ratio, ratio[0])

    def test_scaling_rejects_nonpositive(self, profile):
        with pytest.raises(ValueError):
            profile.scaled_to_worst_case(0.0)

    def test_row_lookup_wraps(self, profile):
        n = profile.rows_per_bank
        assert profile.hc_first(1, 5) == profile.hc_first(1, n + 5)

    def test_tiling(self, profile):
        tiled = profile.tiled_to(4096, banks=range(16))
        assert len(tiled.banks) == 16
        assert tiled.rows_per_bank == 4096
        assert tiled.worst_case == profile.worst_case

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            VulnerabilityProfile(module_label="X", per_bank={})
        with pytest.raises(ValueError):
            VulnerabilityProfile(
                module_label="X", per_bank={0: np.array([0.0, 1.0])}
            )


class TestVulnerabilityBins:
    def test_geometric_construction(self):
        bins = VulnerabilityBins.geometric(64.0, 4096.0, 8)
        assert bins.n_bins == 8
        assert bins.edges[0] == pytest.approx(64.0)
        assert bins.edges[-1] < 4096.0

    def test_max_16_bins(self):
        with pytest.raises(ValueError):
            VulnerabilityBins.geometric(1.0, 100.0, 17)

    def test_threshold_is_lower_edge(self):
        bins = VulnerabilityBins.geometric(100.0, 1600.0, 4)
        value = bins.edges[2] * 1.01
        assert bins.threshold_of(bins.bin_of(value)) <= value

    def test_weak_values_clamp_to_bin_zero(self):
        bins = VulnerabilityBins.geometric(100.0, 1600.0, 4)
        assert bins.bin_of(50.0) == 0

    def test_bin_ids_vectorized_matches_scalar(self):
        bins = VulnerabilityBins.geometric(64.0, 2048.0, 16)
        values = np.geomspace(50, 3000, 40)
        vector = bins.bin_ids(values)
        scalar = [bins.bin_of(v) for v in values]
        assert list(vector) == scalar

    def test_four_bits(self):
        bins = VulnerabilityBins.geometric(64.0, 2048.0, 16)
        assert bins.bits_per_row == 4
        assert bins.n_bins <= MAX_BINS

    def test_invalid_edges(self):
        with pytest.raises(ValueError):
            VulnerabilityBins(edges=np.array([2.0, 1.0]))
        with pytest.raises(ValueError):
            VulnerabilityBins(edges=np.array([]))
        with pytest.raises(ValueError):
            VulnerabilityBins(edges=np.array([-1.0, 1.0]))


class TestSvard:
    def test_build_and_lookup(self, profile):
        svard = Svard.build(profile)
        threshold = svard.threshold_for(1, 10)
        assert threshold >= profile.worst_case
        assert threshold <= profile.hc_first(1, 10)

    def test_security_invariant(self, profile):
        """Section 6.3: thresholds never exceed a row's own HC_first."""
        svard = Svard.build(profile)
        assert svard.verify_security_invariant()

    def test_security_invariant_property_all_modules(self):
        for label in ("H1", "M0", "S0"):
            profile = VulnerabilityProfile.from_ground_truth(
                module_by_label(label), banks=(1,), rows_per_bank=512
            )
            for n_bins in (2, 4, 16):
                svard = Svard.build(profile, n_bins=n_bins)
                assert svard.verify_security_invariant()

    def test_aggressiveness_scale_at_least_one(self, profile):
        svard = Svard.build(profile)
        scales = [
            svard.aggressiveness_scale(1, row)
            for row in range(0, 512, 37)
        ]
        assert all(s >= 1.0 for s in scales)
        assert max(s for s in scales) > 1.2  # some rows relaxed

    def test_worst_bin_matches_worst_case(self, profile):
        svard = Svard.build(profile)
        assert svard.worst_case_threshold() == pytest.approx(profile.worst_case)

    def test_overprotection_factor(self, profile):
        svard = Svard.build(profile)
        factor = svard.overprotection_factor()
        expected = np.mean(
            np.concatenate([profile.values(b) for b in profile.banks])
            / profile.worst_case
        )
        assert factor == pytest.approx(expected)

    def test_in_dram_storage(self, profile):
        svard = Svard.build(profile, storage="in-dram")
        assert isinstance(svard.store, InDramStore)
        assert svard.store.co_refreshed
        assert svard.verify_security_invariant()

    def test_storage_bits(self, profile):
        svard = Svard.build(profile)
        assert svard.store.storage_bits() == 4 * 2 * 1024

    def test_unknown_storage_rejected(self, profile):
        with pytest.raises(ValueError):
            Svard.build(profile, storage="cloud")

    def test_scaled_profile_keeps_invariant(self, profile):
        for target in (4096, 1024, 256, 64):
            svard = Svard.build(profile.scaled_to_worst_case(target))
            assert svard.verify_security_invariant()


@given(
    n_bins=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=20),
)
@settings(max_examples=30, deadline=None)
def test_property_binning_is_always_conservative(n_bins, seed):
    """For any bin count and any field, thresholds never exceed truth."""
    rng = np.random.default_rng(seed)
    values = rng.uniform(64, 131072, size=300)
    bins = VulnerabilityBins.from_values(values, n_bins)
    thresholds = bins.thresholds(values)
    assert np.all(thresholds <= values + 1e-9)


class TestAreaModel:
    def test_anchor_area(self):
        assert mc_table_area_mm2(64 * 1024) == pytest.approx(0.056)

    def test_anchor_latency(self):
        assert mc_table_access_latency_ns(64 * 1024) == pytest.approx(0.47)

    def test_paper_system_overhead(self):
        model = SvardAreaModel()
        assert model.cpu_area_overhead_fraction() == pytest.approx(0.0086, rel=0.01)

    def test_lookup_hidden(self):
        assert SvardAreaModel().lookup_hidden_under_activation()
        # Even a 128K-row bank stays far below tRCD.
        assert SvardAreaModel(rows_per_bank=128 * 1024).lookup_hidden_under_activation()

    def test_in_dram_overhead(self):
        assert in_dram_overhead_fraction() == pytest.approx(0.00006, abs=2e-5)

    def test_area_scales_linearly(self):
        assert mc_table_area_mm2(128 * 1024) == pytest.approx(0.112)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            mc_table_area_mm2(0)
        with pytest.raises(ValueError):
            SvardAreaModel().cpu_area_overhead_fraction(cpu_area_mm2=0)
