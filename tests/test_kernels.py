"""The vectorized measurement kernels against their loop references.

The batched hot paths (``materialize_bank``, ``measure_ber_bank``, the
batched platform characterization) must be *bit-for-bit* equal to the
per-row/per-victim loops they replaced -- not approximately equal --
because the sha256 task cache and the golden files both key on exact
bytes.  The per-row loop survives as
:func:`repro.characterization.reference.characterize_bank_loop` purely
to serve as the oracle here and in the ``make test`` smoke.

This file also carries the regression tests for the measurement-path
bugs fixed alongside the kernels (subset-row profiles, ``ber_at_128k``
grid binding, the missing BER clip).
"""

import numpy as np
import pytest

from tests.conftest import make_tiny_spec
from repro.characterization.reference import characterize_bank_loop
from repro.characterization.runner import (
    BankProfile,
    CharacterizationConfig,
    CharacterizationRunner,
)
from repro.bender.infrastructure import TestPlatform
from repro.dram.mapping import ScramblingScheme
from repro.faults.datapatterns import DATA_PATTERNS
from repro.faults.disturbance import BER_OVERSHOOT_CAP, DisturbanceModel

GRID = (16, 24, 32, 48, 64, 96, 160)
#: Edge rows, subarray-boundary rows, and interior rows of the tiny
#: 256-row / 64-row-subarray module.
SAMPLE_ROWS = [0, 1, 10, 63, 64, 65, 127, 200, 254, 255]


def platform_runner(**overrides) -> CharacterizationRunner:
    spec_overrides = overrides.pop("spec_overrides", {})
    config = CharacterizationConfig(
        rows_per_bank=256,
        banks=(0,),
        hc_grid=GRID,
        mode="platform",
        seed=7,
        **overrides,
    )
    return CharacterizationRunner(make_tiny_spec(**spec_overrides), config)


def assert_profiles_identical(a: BankProfile, b: BankProfile) -> None:
    assert a.module_label == b.module_label
    assert a.bank == b.bank
    assert a.t_agg_on_ns == b.t_agg_on_ns
    assert a.bank_rows == b.bank_rows
    assert np.array_equal(a.row_indices, b.row_indices)
    assert a.wcdp_index.dtype == b.wcdp_index.dtype
    assert np.array_equal(a.wcdp_index, b.wcdp_index)
    assert np.array_equal(a.measured_hc_first, b.measured_hc_first)
    assert sorted(a.ber_by_hc) == sorted(b.ber_by_hc)
    for hc, ber in a.ber_by_hc.items():
        assert np.array_equal(ber, b.ber_by_hc[hc]), hc


class TestMeasureBerBank:
    @pytest.mark.parametrize("t_agg_on_ns", [36.0, 120.0])
    @pytest.mark.parametrize("bank", [0, 3])
    def test_matches_per_row_measure_ber(self, bank, t_agg_on_ns):
        """One batched call == one ``measure_ber`` per row, bit for bit,
        for every data pattern (edge and boundary rows included)."""
        spec = make_tiny_spec()
        rows = np.asarray(SAMPLE_ROWS, dtype=np.int64)
        for pattern in DATA_PATTERNS:
            batched = TestPlatform(spec, rows_per_bank=256, seed=7)
            loop = TestPlatform(spec, rows_per_bank=256, seed=7)
            for hammer_count in (16, 64, 160):
                flips = batched.measure_ber_bank(
                    bank, rows, pattern, hammer_count, t_agg_on_ns
                )
                expected = [
                    loop.measure_ber(
                        bank, int(row), pattern, hammer_count, t_agg_on_ns
                    ).bitflips
                    for row in rows
                ]
                assert flips.tolist() == expected, (pattern, hammer_count)
            # The device command accounting must match too, or batched
            # runs would drift from the loop's refresh-window checks.
            assert (
                batched.device.clock_ns == loop.device.clock_ns
            ), pattern
            assert (
                batched.device.bank(bank).activation_count
                == loop.device.bank(bank).activation_count
            ), pattern

    def test_scrambled_modules_match_too(self):
        """Row scrambling changes which rows are physical neighbours;
        the batched physical mapping must agree with the scalar one."""
        for scheme in (ScramblingScheme.MIRROR, ScramblingScheme.XOR_FOLD):
            spec = make_tiny_spec(scrambling=scheme)
            rows = np.asarray(SAMPLE_ROWS, dtype=np.int64)
            batched = TestPlatform(spec, rows_per_bank=256, seed=3)
            loop = TestPlatform(spec, rows_per_bank=256, seed=3)
            flips = batched.measure_ber_bank(0, rows, DATA_PATTERNS[0], 96)
            expected = [
                loop.measure_ber(0, int(row), DATA_PATTERNS[0], 96).bitflips
                for row in rows
            ]
            assert flips.tolist() == expected, scheme


class TestCharacterizationKernel:
    @pytest.mark.parametrize("iterations", [1, 2])
    @pytest.mark.parametrize("t_agg_on_ns", [36.0, 120.0])
    def test_matches_loop_oracle(self, t_agg_on_ns, iterations):
        """The batched Algorithm 1 sweep equals the per-row oracle,
        profile-for-profile, across banks x tAggOn x iterations."""
        for bank in (0, 2):
            batched = platform_runner(
                t_agg_on_ns=t_agg_on_ns, iterations=iterations
            )
            oracle = platform_runner(
                t_agg_on_ns=t_agg_on_ns, iterations=iterations
            )
            assert_profiles_identical(
                batched.characterize_bank(bank, rows=SAMPLE_ROWS),
                characterize_bank_loop(oracle, bank, rows=SAMPLE_ROWS),
            )

    def test_full_bank_matches_loop_oracle(self):
        batched = platform_runner()
        oracle = platform_runner()
        assert_profiles_identical(
            batched.characterize_bank(1),
            characterize_bank_loop(oracle, 1),
        )


class TestMaterializeBank:
    def test_batch_matches_per_victim_calls(self):
        """Materializing all rows at once == one call per victim, for
        both the emitted bit indices and the ``n_flipped`` state."""
        spec = make_tiny_spec()
        batched = DisturbanceModel(spec, rows_per_bank=256, seed=11)
        scalar = DisturbanceModel(spec, rows_per_bank=256, seed=11)
        rng = np.random.default_rng(0)
        exposure = rng.uniform(0.0, 400.0, size=256)
        for model in (batched, scalar):
            model.bank_state(0).exposure[:] = exposure
            for row in range(0, 256, 3):
                model.set_pattern_hint(0, row, DATA_PATTERNS[row % 4])

        flips_batched = batched.materialize_bank(0)
        flips_scalar = {}
        for victim in range(256):
            flips_scalar.update(
                scalar.materialize_bank(0, np.asarray([victim]))
            )

        assert sorted(flips_batched) == sorted(flips_scalar)
        for victim, bits in flips_batched.items():
            assert np.array_equal(bits, flips_scalar[victim]), victim
        assert np.array_equal(
            batched.bank_state(0).n_flipped, scalar.bank_state(0).n_flipped
        )


class TestMeasurementPathRegressions:
    def test_subset_profile_sized_to_measured_rows(self):
        """A partial platform run must report the measured rows, not
        pretend the whole bank was characterized (regression:
        rows_per_bank-sized arrays with zero-filled unmeasured rows)."""
        rows = [5, 100, 250]
        profile = platform_runner().characterize_bank(0, rows=rows)
        assert profile.rows == len(rows)
        assert profile.wcdp_index.shape == (len(rows),)
        assert profile.measured_hc_first.shape == (len(rows),)
        for ber in profile.ber_by_hc.values():
            assert ber.shape == (len(rows),)
        assert profile.row_indices.tolist() == rows
        assert profile.bank_rows == 256
        assert profile.relative_locations() == pytest.approx(
            [row / 255 for row in rows]
        )

    def test_ber_at_128k_requires_128k_in_grid(self):
        """A grid that stops short of 128K must raise, not silently
        rebind ``ber_at_128k`` to its own maximum (regression)."""
        profile = platform_runner().characterize_bank(0, rows=[10, 20])
        with pytest.raises(ValueError, match="did not test 128K"):
            profile.ber_at_128k
        # With 128K actually tested, the property serves it.
        hc_128k = 128 * 1024
        profile.ber_by_hc[hc_128k] = np.asarray([0.25, 0.5])
        assert profile.ber_at_128k.tolist() == [0.25, 0.5]

    def test_measured_ber_clipped_at_one(self):
        """``ber_sat * affinity * BER_OVERSHOOT_CAP`` can exceed 1; the
        measured-path BER must clip so a row never reports more flipped
        bits than it has (regression: no clip in ``_ber_scalar``)."""
        model = DisturbanceModel(make_tiny_spec(), rows_per_bank=256, seed=0)
        assert 0.9 * 1.6 * BER_OVERSHOOT_CAP > 1.0
        ber = model._ber_scalar(
            h_eq=1e9, hcf=20.0, ber_sat=0.9, affinity=1.6
        )
        assert ber == 1.0
        targets = model.flip_targets(
            h_eq=np.asarray([1e9]),
            hcf=np.asarray([20.0]),
            ber_sat=np.asarray([0.9]),
            affinity=1.6,
        )
        assert targets.tolist() == [model.row_bits]
