"""Tests for the testing-platform simulator (DRAM Bender analogue)."""

import numpy as np
import pytest

from repro.bender.infrastructure import RefreshWindowExceeded, TestPlatform
from repro.bender.programs import (
    hammer_doublesided_program,
    rowclone_program,
)
from repro.bender.temperature import TemperatureController, ThermalPlant
from repro.dram.commands import CommandKind
from repro.dram.timing import DDR4_3200
from repro.faults.datapatterns import DATA_PATTERNS, DataPattern

from tests.conftest import make_tiny_spec


@pytest.fixture
def platform():
    return TestPlatform(make_tiny_spec(), seed=3)


class TestTemperatureController:
    def test_settles_within_half_degree(self):
        controller = TemperatureController(setpoint_c=80.0, seed=0)
        controller.settle(tolerance_c=0.5)
        controller.run(300)
        assert controller.stability_band_c(300) <= 0.5

    def test_three_setpoints_from_paper(self):
        # The paper validates stability at 35, 50, and 80 C.
        for setpoint in (35.0, 50.0, 80.0):
            controller = TemperatureController(setpoint_c=setpoint, seed=1)
            controller.settle(tolerance_c=0.5)
            controller.run(120)
            assert controller.stability_band_c(120) <= 0.5

    def test_plant_steady_state_power(self):
        plant = ThermalPlant()
        power = plant.steady_state_power(80.0)
        plant.temperature_c = 80.0
        plant.step(power, 10.0)
        assert plant.temperature_c == pytest.approx(80.0)

    def test_plant_rejects_bad_inputs(self):
        plant = ThermalPlant()
        with pytest.raises(ValueError):
            plant.step(-1.0, 1.0)
        with pytest.raises(ValueError):
            plant.step(1.0, 0.0)

    def test_unheated_plant_cools_to_ambient(self):
        plant = ThermalPlant(temperature_c=80.0)
        for _ in range(2000):
            plant.step(0.0, 1.0)
        assert plant.temperature_c == pytest.approx(plant.ambient_c, abs=0.1)


class TestPrograms:
    def test_hammer_program_structure(self):
        program = hammer_doublesided_program(
            bank=1, aggressor_rows=[10, 12], hammer_count=3,
            t_agg_on_ns=36.0, timing=DDR4_3200,
        )
        acts = [c for c in program if c.kind is CommandKind.ACT]
        pres = [c for c in program if c.kind is CommandKind.PRE]
        assert len(acts) == 6
        assert len(pres) == 6
        assert [c.row for c in acts] == [10, 12, 10, 12, 10, 12]

    def test_hammer_program_inserts_hold_for_rowpress(self):
        program = hammer_doublesided_program(
            bank=1, aggressor_rows=[10], hammer_count=1,
            t_agg_on_ns=2000.0, timing=DDR4_3200,
        )
        waits = [c for c in program if c.kind is CommandKind.WAIT]
        assert len(waits) == 1
        assert waits[0].wait_ns == pytest.approx(2000.0 - DDR4_3200.tRAS)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            hammer_doublesided_program(0, [1], -1, 36.0, DDR4_3200)

    def test_rowclone_program(self):
        program = rowclone_program(0, 5, 6)
        kinds = [c.kind for c in program]
        assert kinds == [
            CommandKind.ACT, CommandKind.PRE, CommandKind.ACT, CommandKind.PRE,
        ]


class TestMeasureBer:
    def test_zero_ber_below_threshold(self, platform):
        hc_first = platform.model.true_hc_first(0)
        victim = 33
        result = platform.measure_ber(
            0, victim, DataPattern.ROW_STRIPE, int(hc_first[victim] * 0.4)
        )
        assert result.ber == 0.0

    def test_positive_ber_above_threshold(self, platform):
        victim = 33
        hc_first = platform.model.true_hc_first(0)[victim]
        result = platform.measure_ber(
            0, victim, platform.model.wcdp(0, victim), int(hc_first * 4)
        )
        assert result.ber > 0.0
        assert result.bitflips >= 1

    def test_wcdp_yields_max_ber(self, platform):
        victim = 40
        hc = int(platform.model.true_hc_first(0)[victim] * 6)
        results = {
            pattern: platform.measure_ber(0, victim, pattern, hc).ber
            for pattern in DATA_PATTERNS
        }
        wcdp = platform.model.wcdp(0, victim)
        assert results[wcdp] == max(results.values())

    def test_column_stripe_weakest(self, platform):
        victim = 40
        hc = int(platform.model.true_hc_first(0)[victim] * 6)
        results = {
            pattern: platform.measure_ber(0, victim, pattern, hc).ber
            for pattern in DATA_PATTERNS
        }
        cs = results[DataPattern.COLUMN_STRIPE]
        assert cs <= min(
            results[DataPattern.ROW_STRIPE], results[DataPattern.CHECKERBOARD]
        )

    def test_measurement_repeatable_after_reinit(self, platform):
        victim = 50
        hc = int(platform.model.true_hc_first(0)[victim] * 3)
        first = platform.measure_ber(0, victim, DataPattern.ROW_STRIPE, hc)
        second = platform.measure_ber(0, victim, DataPattern.ROW_STRIPE, hc)
        assert first.bitflips == second.bitflips

    def test_ber_monotone_in_hammer_count(self, platform):
        victim = 60
        hc_first = platform.model.true_hc_first(0)[victim]
        bers = [
            platform.measure_ber(
                0, victim, platform.model.wcdp(0, victim), int(hc_first * mult)
            ).ber
            for mult in (1.5, 3.0, 6.0)
        ]
        assert bers == sorted(bers)

    def test_rowpress_increases_ber(self, platform):
        victim = 70
        hc = int(platform.model.true_hc_first(0)[victim] * 1.5)
        wcdp = platform.model.wcdp(0, victim)
        short = platform.measure_ber(0, victim, wcdp, hc, t_agg_on_ns=36.0)
        long = platform.measure_ber(0, victim, wcdp, hc, t_agg_on_ns=2000.0)
        assert long.ber >= short.ber
        assert long.ber > 0


class TestReverseEngineeringProbes:
    def test_interior_row_disturbs_both_sides(self, platform):
        hc = int(platform.model.true_hc_first(0).max() * 4)
        disturbed = platform.single_sided_disturb_footprint(0, 33, hc)
        assert 32 in disturbed and 34 in disturbed

    def test_boundary_row_disturbs_one_side(self, platform):
        boundary = platform.geometry.subarray_rows  # first row of SA 1
        hc = int(platform.model.true_hc_first(0).max() * 4)
        disturbed = platform.single_sided_disturb_footprint(0, boundary, hc)
        assert boundary + 1 in disturbed
        assert boundary - 1 not in disturbed

    def test_rowclone_within_subarray(self, platform):
        platform.device.rowclone_success_rate = 1.0
        assert platform.try_rowclone(0, 5, 9)

    def test_rowclone_across_subarray_fails(self, platform):
        platform.device.rowclone_success_rate = 1.0
        sa = platform.geometry.subarray_rows
        assert not platform.try_rowclone(0, sa - 1, sa)


class TestRefreshWindowGuard:
    def test_long_program_rejected_when_enforced(self):
        platform = TestPlatform(make_tiny_spec(), enforce_refresh_window=True)
        with pytest.raises(RefreshWindowExceeded):
            platform.hammer_doublesided(0, 33, hammer_count=500_000,
                                        t_agg_on_ns=100_000.0)

    def test_normal_program_accepted_when_enforced(self):
        platform = TestPlatform(make_tiny_spec(), enforce_refresh_window=True)
        platform.hammer_doublesided(0, 33, hammer_count=1000)


class TestPlatformConstruction:
    def test_scaled_geometry(self):
        platform = TestPlatform(make_tiny_spec(), rows_per_bank=128)
        assert platform.geometry.rows_per_bank == 128

    def test_aggressors_account_for_scrambling(self):
        from repro.dram.mapping import ScramblingScheme

        spec = make_tiny_spec(scrambling=ScramblingScheme.MIRROR)
        platform = TestPlatform(spec)
        below, above = platform.aggressor_rows_for(4)
        # logical 4 -> physical 3; neighbours physical 2, 4 -> logical 2, 3
        assert (below, above) == (2, 3)
