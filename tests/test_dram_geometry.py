"""Unit and property tests for DRAM topology."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.geometry import REPRESENTATIVE_BANKS, DramGeometry, RowAddress, Subarray


@pytest.fixture
def geometry():
    return DramGeometry(rows_per_bank=4096, subarray_rows=512)


class TestDramGeometry:
    def test_default_matches_table4(self):
        g = DramGeometry()
        assert g.ranks == 2
        assert g.bank_groups == 4
        assert g.banks_per_group == 4
        assert g.rows_per_bank == 128 * 1024
        assert g.row_bytes == 8 * 1024

    def test_total_banks(self):
        g = DramGeometry()
        assert g.banks_per_rank == 16
        assert g.total_banks == 32

    def test_bank_group_of(self, geometry):
        assert geometry.bank_group_of(0) == 0
        assert geometry.bank_group_of(4) == 1
        assert geometry.bank_group_of(10) == 2
        assert geometry.bank_group_of(15) == 3

    def test_representative_banks_cover_all_groups(self, geometry):
        groups = {geometry.bank_group_of(b) for b in REPRESENTATIVE_BANKS}
        assert groups == {0, 1, 2, 3}

    def test_bank_id_roundtrip(self, geometry):
        for group in range(4):
            for bank in range(4):
                flat = geometry.bank_id(group, bank)
                assert geometry.bank_group_of(flat) == group

    def test_subarray_partition_covers_bank(self, geometry):
        subarrays = geometry.subarrays()
        assert subarrays[0].start == 0
        assert subarrays[-1].end == geometry.rows_per_bank
        for previous, current in zip(subarrays, subarrays[1:]):
            assert previous.end == current.start

    def test_partial_final_subarray(self):
        g = DramGeometry(rows_per_bank=1000, subarray_rows=512)
        assert g.subarrays_per_bank == 2
        assert g.subarrays()[-1].size == 1000 - 512

    def test_subarray_of(self, geometry):
        assert geometry.subarray_of(0).index == 0
        assert geometry.subarray_of(511).index == 0
        assert geometry.subarray_of(512).index == 1

    def test_same_subarray(self, geometry):
        assert geometry.same_subarray(0, 511)
        assert not geometry.same_subarray(511, 512)

    def test_relative_location_endpoints(self, geometry):
        assert geometry.relative_location(0) == 0.0
        assert geometry.relative_location(geometry.rows_per_bank - 1) == 1.0

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            DramGeometry(ranks=0)
        with pytest.raises(ValueError):
            DramGeometry(subarray_rows=1)

    def test_row_bounds_checked(self, geometry):
        with pytest.raises(ValueError):
            geometry.subarray_of(geometry.rows_per_bank)
        with pytest.raises(ValueError):
            geometry.relative_location(-1)


class TestSubarray:
    def test_contains(self):
        sa = Subarray(index=1, start=512, end=1024)
        assert 512 in sa
        assert 1023 in sa
        assert 1024 not in sa

    def test_distance_to_sense_amps(self):
        sa = Subarray(index=0, start=0, end=512)
        assert sa.distance_to_sense_amps(0) == 0
        assert sa.distance_to_sense_amps(511) == 0
        assert sa.distance_to_sense_amps(255) == 255
        assert sa.distance_to_sense_amps(256) == 255

    def test_edge_rows(self):
        sa = Subarray(index=0, start=100, end=200)
        assert sa.is_edge_row(100)
        assert sa.is_edge_row(199)
        assert not sa.is_edge_row(150)

    def test_distance_requires_membership(self):
        sa = Subarray(index=0, start=0, end=512)
        with pytest.raises(ValueError):
            sa.distance_to_sense_amps(512)


class TestRowAddress:
    def test_neighbors(self):
        addr = RowAddress(rank=0, bank=3, row=100)
        below, above = addr.neighbors()
        assert below.row == 99 and above.row == 101
        assert below.bank == above.bank == 3

    def test_ordering(self):
        a = RowAddress(0, 0, 5)
        b = RowAddress(0, 0, 6)
        assert a < b


@given(
    rows=st.integers(min_value=2, max_value=1 << 17),
    subarray=st.integers(min_value=2, max_value=2048),
    row=st.data(),
)
@settings(max_examples=60)
def test_property_subarray_of_consistent(rows, subarray, row):
    """Every row belongs to exactly the subarray the partition says."""
    g = DramGeometry(rows_per_bank=rows, subarray_rows=subarray)
    r = row.draw(st.integers(min_value=0, max_value=rows - 1))
    sa = g.subarray_of(r)
    assert r in sa
    assert sa.start % subarray == 0
    assert g.relative_location(r) == pytest.approx(r / max(rows - 1, 1))
