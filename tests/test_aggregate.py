"""Seed-matrix aggregation (repro.experiments.aggregate)."""

import json

import pytest

from repro.experiments.aggregate import (
    AggregationError,
    ResultSetAggregate,
    collect_report_sections,
    discover_result_sets,
)
from repro.experiments.api import PlotSpec, ResultSet, ResultTable


def member(seed: int, speedup_by_hc):
    """A fig12-shaped artifact for one seed."""
    return ResultSet(
        experiment="fig12",
        title="Fig 12",
        scalars={"n_mixes": 2, "headline": 1.0 + seed / 10},
        tables=(ResultTable(
            name="metrics",
            headers=("defense", "hc_first", "weighted_speedup"),
            rows=tuple(
                ("PARA", hc, value)
                for hc, value in sorted(speedup_by_hc.items())
            ),
        ),),
        plots=(PlotSpec(
            name="speedup", kind="line", table="metrics",
            x="hc_first", y=("weighted_speedup",), series="defense",
        ),),
        meta={"scale": {"seed": seed, "n_mixes": 2}, "paper_ref": "Fig. 12"},
    )


@pytest.fixture
def aggregate():
    return ResultSetAggregate.from_result_sets([
        member(0, {64: 1.0, 128: 2.0}),
        member(1, {64: 1.2, 128: 2.2}),
        member(2, {64: 1.1, 128: 1.8}),
    ])


class TestTableAggregation:
    def test_varying_column_becomes_four_stats_columns(self, aggregate):
        table = aggregate.to_result_set().table("metrics")
        assert table.headers == (
            "defense", "hc_first",
            "weighted_speedup_mean", "weighted_speedup_stddev",
            "weighted_speedup_min", "weighted_speedup_max",
        )

    def test_key_columns_pass_through(self, aggregate):
        table = aggregate.to_result_set().table("metrics")
        assert table.column("defense") == ["PARA", "PARA"]
        assert table.column("hc_first") == [64, 128]

    def test_stats_values(self, aggregate):
        table = aggregate.to_result_set().table("metrics")
        row = table.rows[0]  # hc 64: samples 1.0, 1.2, 1.1
        assert row[2] == pytest.approx(1.1)       # mean
        assert row[3] == pytest.approx(0.081649658)  # population stddev
        assert row[4] == pytest.approx(1.0)       # min
        assert row[5] == pytest.approx(1.2)       # max

    def test_single_member_passes_through_unchanged(self):
        one = ResultSetAggregate.from_result_sets(
            [member(0, {64: 1.0})]
        ).to_result_set()
        assert one.table("metrics").headers == (
            "defense", "hc_first", "weighted_speedup",
        )
        assert one.meta["aggregate"]["n_seeds"] == 1

    def test_members_sorted_by_seed(self):
        aggregate = ResultSetAggregate.from_result_sets([
            member(5, {64: 1.0}), member(1, {64: 1.2}),
        ])
        assert aggregate.seeds == (1, 5)


class TestScalarAggregation:
    def test_identical_scalars_stay_plain(self, aggregate):
        assert aggregate.to_result_set().scalars["n_mixes"] == 2

    def test_varying_scalars_get_stats(self, aggregate):
        scalars = aggregate.to_result_set().scalars
        assert scalars["headline_mean"] == pytest.approx(1.1)
        assert scalars["headline_min"] == pytest.approx(1.0)
        assert scalars["headline_max"] == pytest.approx(1.2)
        assert "headline" not in scalars


class TestPlotRewrite:
    def test_plot_points_at_mean_with_minmax_band(self, aggregate):
        (plot,) = aggregate.to_result_set().plots
        assert plot.y == ("weighted_speedup_mean",)
        assert plot.ybands == ((
            "weighted_speedup_mean",
            "weighted_speedup_min",
            "weighted_speedup_max",
        ),)

    def test_ybands_round_trip_json(self, aggregate):
        result = aggregate.to_result_set()
        clone = ResultSet.from_json_dict(
            json.loads(json.dumps(result.to_json_dict()))
        )
        assert clone.plots == result.plots

    def test_plots_without_ybands_keep_their_json_shape(self):
        data = member(0, {64: 1.0}).to_json_dict()
        assert "ybands" not in data["plots"][0]


class TestRenderersConsumeAggregates:
    """The stats columns flow into text/CSV/LaTeX unchanged."""

    def test_text(self, aggregate):
        text = aggregate.to_result_set().render_text()
        assert "weighted_speedup_stddev" in text
        assert "aggregated over 3 seeds" in text

    def test_csv(self, aggregate):
        from repro.experiments.render import get_renderer

        csv_text = get_renderer("csv").render(aggregate.to_result_set())
        assert "weighted_speedup_mean" in csv_text
        assert "headline_stddev" in csv_text

    def test_latex(self, aggregate):
        from repro.experiments.render import get_renderer

        tex = get_renderer("latex").render(aggregate.to_result_set())
        assert r"weighted\_speedup\_mean" in tex


class TestMisalignment:
    def test_different_experiments_refuse(self):
        other = ResultSet(experiment="fig13", title="x")
        with pytest.raises(AggregationError, match="across experiments"):
            ResultSetAggregate.from_result_sets(
                [member(0, {64: 1.0}), other]
            )

    def test_row_count_mismatch_refuses(self):
        with pytest.raises(AggregationError, match="row counts differ"):
            ResultSetAggregate.from_result_sets([
                member(0, {64: 1.0}),
                member(1, {64: 1.0, 128: 2.0}),
            ]).to_result_set()

    def test_constant_nonnumeric_cell_in_varying_column_passes(self):
        """An identical sentinel cell ("n/a") inside an otherwise
        seed-varying column aligns fine; only cells that actually
        differ must be numeric."""
        def with_sentinel(seed):
            return ResultSet(
                experiment="demo", title="t",
                tables=(ResultTable(
                    name="main", headers=("k", "v"),
                    rows=(("row1", 1.0 + seed), ("note", "n/a")),
                ),),
                meta={"scale": {"seed": seed}},
            )

        table = ResultSetAggregate.from_result_sets(
            [with_sentinel(0), with_sentinel(1)]
        ).to_result_set().table("main")
        assert table.headers == (
            "k", "v_mean", "v_stddev", "v_min", "v_max",
        )
        assert table.rows[0][1] == pytest.approx(1.5)
        assert table.rows[1] == ("note", "n/a", None, None, None)

    def test_varying_nonnumeric_column_refuses(self):
        def with_label(seed, label):
            return ResultSet(
                experiment="demo", title="t",
                tables=(ResultTable(
                    name="main", headers=("k", "v"),
                    rows=((label, 1.0),),
                ),),
                meta={"scale": {"seed": seed}},
            )

        with pytest.raises(AggregationError, match="not numeric"):
            ResultSetAggregate.from_result_sets([
                with_label(0, "a"), with_label(1, "b"),
            ]).to_result_set()

    def test_scalar_key_mismatch_refuses(self):
        a = ResultSet(experiment="demo", title="t", scalars={"x": 1})
        b = ResultSet(experiment="demo", title="t", scalars={"y": 1})
        with pytest.raises(AggregationError, match="scalar keys"):
            ResultSetAggregate.from_result_sets([a, b]).to_result_set()

    def test_empty_refuses(self):
        with pytest.raises(AggregationError, match="nothing"):
            ResultSetAggregate.from_result_sets([])


class TestArtifactTree:
    def write_tree(self, root):
        for seed in (0, 1):
            directory = root / f"seed{seed}"
            directory.mkdir(parents=True)
            artifact = member(seed, {64: 1.0 + seed / 10})
            (directory / "fig12.json").write_text(
                json.dumps(artifact.to_json_dict())
            )
        # Valid non-ResultSet JSON must be skipped, not crash discovery.
        (root / "manifest.json").write_text(json.dumps({"format": 1}))

    def test_discover_parses_seeds_from_path(self, tmp_path):
        self.write_tree(tmp_path)
        refs = discover_result_sets(tmp_path)
        assert [(r.seed, r.group) for r in refs] == [
            (0, ("<seed>", "fig12.json")),
            (1, ("<seed>", "fig12.json")),
        ]

    def test_collect_aggregates_across_seed_dirs(self, tmp_path):
        self.write_tree(tmp_path)
        (section,) = collect_report_sections(tmp_path)
        assert section.meta["aggregate"]["seeds"] == [0, 1]
        assert "weighted_speedup_mean" in section.table("metrics").headers

    def test_collect_no_aggregate_keeps_sections_separate(self, tmp_path):
        self.write_tree(tmp_path)
        sections = collect_report_sections(tmp_path, aggregate=False)
        assert len(sections) == 2

    def test_single_file_root(self, tmp_path):
        artifact = member(0, {64: 1.0})
        path = tmp_path / "fig12.json"
        path.write_text(json.dumps(artifact.to_json_dict()))
        (ref,) = discover_result_sets(path)
        assert ref.seed == 0

    def test_corrupt_artifact_is_a_loud_error_not_a_lost_seed(
        self, tmp_path
    ):
        """A truncated seed artifact must fail the report, not
        silently demote the aggregate to the surviving seeds."""
        self.write_tree(tmp_path)
        (tmp_path / "seed0" / "fig12.json").write_text('{"experiment"')
        with pytest.raises(AggregationError, match="cannot read"):
            collect_report_sections(tmp_path)

    def test_resultset_shaped_but_invalid_json_is_loud(self, tmp_path):
        (tmp_path / "bad.json").write_text(json.dumps({
            "experiment": "x", "title": "t",
            "tables": [{"name": "m", "headers": ["a"], "rows": [[1, 2]]}],
        }))
        with pytest.raises(AggregationError, match="does not deserialize"):
            discover_result_sets(tmp_path)

    def test_table_set_mismatch_refuses_in_either_order(self):
        full = member(0, {64: 1.0})
        missing = ResultSet(
            experiment="fig12", title="Fig 12",
            scalars=dict(full.scalars),
            meta={"scale": {"seed": 1}},
        )
        for pair in ([full, missing], [missing, full]):
            with pytest.raises(AggregationError, match="table sets"):
                ResultSetAggregate.from_result_sets(pair).to_result_set()

    def test_aggregation_does_not_mutate_member_meta(self):
        shared_meta = {"paper_ref": "Fig. 12"}
        a = ResultSet(experiment="demo", title="t", meta=dict(shared_meta))
        b = ResultSet(experiment="demo", title="t", meta=dict(shared_meta))
        ResultSetAggregate.from_result_sets(
            [a, b], seeds=[0, 1]
        ).to_result_set()
        assert "aggregate" not in a.meta and "aggregate" not in b.meta

    def test_unrelated_directories_do_not_aggregate(self, tmp_path):
        for parent in ("run-a", "run-b"):
            directory = tmp_path / parent / "seed0"
            directory.mkdir(parents=True)
            (directory / "fig12.json").write_text(
                json.dumps(member(0, {64: 1.0}).to_json_dict())
            )
        sections = collect_report_sections(tmp_path)
        assert len(sections) == 2
