"""Determinism and cache-correctness tests for repro.orchestration.

The contract under test: an experiment's results are a pure function
of ``(ExperimentScale, code version)`` -- bit-identical whether tasks
run serially, across a process pool, or come out of a warm on-disk
cache; and the cache never serves an entry across scales, code
versions, or corrupted files.
"""

import dataclasses
import os
import pickle
import shutil

import pytest

from repro.experiments import fig12_performance, fig13_adversarial
from repro.experiments.common import (
    ExperimentScale,
    _CHARACTERIZATION_CACHE,
    characterize_modules,
)
from repro.orchestration import (
    OrchestrationContext,
    ResultCache,
    Task,
    canonicalize,
    derive_task_seed,
    make_task,
    scan_cache_entry_keys,
    shard_name,
    stable_hash,
)
from repro.sim.config import SystemConfig

#: Small enough that the three-way fig12 comparison stays in seconds:
#: 1 baseline + (No Svärd, Svärd-S0) x 1 HC x 1 mix = 3 tasks.
TINY = ExperimentScale(
    rows_per_bank=1024,
    banks=(1,),
    n_mixes=1,
    requests_per_core=600,
    hc_first_values=(64,),
    svard_profiles=("S0",),
    seed=5,
)


def _double(task: Task):
    return task.params * 2


def _fig12(scale, orchestration=None):
    return fig12_performance.run(
        scale, defenses=("PARA",), orchestration=orchestration
    )


# ----------------------------------------------------------------------
# Determinism: serial == parallel == warm cache; seeds matter.
# ----------------------------------------------------------------------


class TestDeterminism:
    def test_serial_parallel_warm_cache_identical(self, tmp_path):
        serial = _fig12(TINY)
        parallel = _fig12(TINY, OrchestrationContext(jobs=2))
        cold_ctx = OrchestrationContext(jobs=2, cache=ResultCache(tmp_path))
        cold = _fig12(TINY, cold_ctx)
        warm_ctx = OrchestrationContext(jobs=2, cache=ResultCache(tmp_path))
        warm = _fig12(TINY, warm_ctx)

        # Bit-identical metrics, not approximately equal.
        assert serial.metrics == parallel.metrics
        assert serial.metrics == cold.metrics
        assert serial.metrics == warm.metrics

        assert cold_ctx.stats.executed == cold_ctx.stats.submitted == 3
        # The warm run recalls every task: zero simulations executed,
        # cache-hit counter equals the task count.
        assert warm_ctx.stats.executed == 0
        assert warm_ctx.stats.hits == warm_ctx.stats.submitted == 3

    def test_distinct_seeds_differ(self):
        from dataclasses import replace

        a = _fig12(TINY)
        b = _fig12(replace(TINY, seed=6))
        assert a.metrics != b.metrics

    def test_fig13_parallel_identical(self, tmp_path):
        from repro.sim.config import SystemConfig

        scale = ExperimentScale(
            rows_per_bank=1024, banks=(1,), svard_profiles=("S0",), seed=4,
        )
        # fig13 defaults to 12K requests/core; a small explicit config
        # keeps this equivalence check fast.
        config = SystemConfig(requests_per_core=1500, defense_epoch_ns=1e6)
        serial = fig13_adversarial.run(scale, system_config=config)
        ctx = OrchestrationContext(jobs=2, cache=ResultCache(tmp_path))
        parallel = fig13_adversarial.run(
            scale, system_config=config, orchestration=ctx
        )
        assert serial.normalized_slowdown == parallel.normalized_slowdown
        assert serial.raw_slowdown == parallel.raw_slowdown

    def test_characterization_parallel_identical(self):
        import numpy as np

        scale = ExperimentScale(rows_per_bank=256, banks=(0, 1), seed=7)
        serial = characterize_modules(["S0"], scale)["S0"]
        _CHARACTERIZATION_CACHE.clear()
        parallel = characterize_modules(
            ["S0"], scale, orchestration=OrchestrationContext(jobs=2)
        )["S0"]
        _CHARACTERIZATION_CACHE.clear()
        for bank in serial.banks:
            np.testing.assert_array_equal(
                serial.banks[bank].measured_hc_first,
                parallel.banks[bank].measured_hc_first,
            )
            np.testing.assert_array_equal(
                serial.banks[bank].ber_at_128k,
                parallel.banks[bank].ber_at_128k,
            )

    def test_derived_seeds_deterministic_and_distinct(self):
        assert derive_task_seed(0, ("a", 1)) == derive_task_seed(0, ("a", 1))
        assert derive_task_seed(0, ("a", 1)) != derive_task_seed(0, ("a", 2))
        assert derive_task_seed(0, ("a", 1)) != derive_task_seed(1, ("a", 1))
        task = make_task(("k",), _double, 21, base_seed=3)
        assert task.seed == derive_task_seed(3, ("k",))


# ----------------------------------------------------------------------
# Cache correctness: scoping, corruption, atomicity of identity.
# ----------------------------------------------------------------------


class TestCacheCorrectness:
    def test_entry_not_served_across_scales(self, tmp_path):
        cache = ResultCache(tmp_path)
        ctx = OrchestrationContext(cache=cache)
        task = make_task(("t",), _double, 21)
        assert ctx.run([task], fingerprint=TINY) == {("t",): 42}

        from dataclasses import replace

        other = replace(TINY, seed=6)
        ctx2 = OrchestrationContext(cache=ResultCache(tmp_path))
        assert ctx2.run([task], fingerprint=other) == {("t",): 42}
        assert ctx2.stats.hits == 0 and ctx2.stats.executed == 1

        # Same scale again: served from disk.
        ctx3 = OrchestrationContext(cache=ResultCache(tmp_path))
        assert ctx3.run([task], fingerprint=TINY) == {("t",): 42}
        assert ctx3.stats.hits == 1 and ctx3.stats.executed == 0

    def test_entry_not_served_across_code_versions(self, tmp_path):
        task = make_task(("t",), _double, 21)
        old = OrchestrationContext(cache=ResultCache(tmp_path, version="v1"))
        old.run([task], fingerprint=TINY)
        new = OrchestrationContext(cache=ResultCache(tmp_path, version="v2"))
        new.run([task], fingerprint=TINY)
        assert new.stats.hits == 0 and new.stats.executed == 1

    @pytest.mark.parametrize("garbage", [b"", b"not a pickle", b"\x80\x04junk"])
    def test_corrupt_entry_discarded_and_recomputed(self, tmp_path, garbage):
        cache = ResultCache(tmp_path)
        task = make_task(("t",), _double, 21)
        OrchestrationContext(cache=cache).run([task], fingerprint=TINY)
        path = cache.path_for(cache.entry_key(task.key, TINY))
        assert path.exists()
        path.write_bytes(garbage)

        fresh = ResultCache(tmp_path)
        ctx = OrchestrationContext(cache=fresh)
        assert ctx.run([task], fingerprint=TINY) == {("t",): 42}
        assert ctx.stats.executed == 1
        assert fresh.stats.corrupt_discarded == 1
        # The corrupt file was replaced by a valid recomputed entry.
        ctx2 = OrchestrationContext(cache=ResultCache(tmp_path))
        assert ctx2.run([task], fingerprint=TINY) == {("t",): 42}
        assert ctx2.stats.hits == 1

    def test_entry_copied_to_wrong_key_rejected(self, tmp_path):
        """A valid pickle stored under the wrong hash is not trusted."""
        cache = ResultCache(tmp_path)
        task = make_task(("t",), _double, 21)
        OrchestrationContext(cache=cache).run([task], fingerprint=TINY)
        src = cache.path_for(cache.entry_key(task.key, TINY))

        imposter = make_task(("other",), _double, 1)
        dst = cache.path_for(cache.entry_key(imposter.key, TINY))
        dst.parent.mkdir(parents=True, exist_ok=True)  # its shard
        shutil.copy(src, dst)

        fresh = ResultCache(tmp_path)
        ctx = OrchestrationContext(cache=fresh)
        assert ctx.run([imposter], fingerprint=TINY) == {("other",): 2}
        assert ctx.stats.executed == 1
        assert fresh.stats.corrupt_discarded == 1

    def test_duplicate_task_keys_rejected(self):
        tasks = [make_task(("k",), _double, 1), make_task(("k",), _double, 2)]
        with pytest.raises(ValueError, match="duplicate"):
            OrchestrationContext().run(tasks)

    def test_cache_survives_unpicklable_dir_listing(self, tmp_path):
        """Stray files in the cache directory are simply ignored."""
        (tmp_path / "README.txt").write_text("not a cache entry")
        ctx = OrchestrationContext(cache=ResultCache(tmp_path))
        task = make_task(("t",), _double, 5)
        assert ctx.run([task], fingerprint=None) == {("t",): 10}


# ----------------------------------------------------------------------
# Sharded layout: fan-out on store, flat read-through, honest scans.
# ----------------------------------------------------------------------


class TestShardedLayout:
    def test_store_lands_in_the_prefix_shard(self, tmp_path):
        from repro.orchestration import shard_name
        from repro.orchestration.cache import SHARD_WIDTH

        cache = ResultCache(tmp_path)
        task = make_task(("t",), _double, 21)
        entry_key = cache.entry_key(task.key, TINY)
        OrchestrationContext(cache=cache).run([task], fingerprint=TINY)
        path = cache.path_for(entry_key)
        assert path.parent == tmp_path / entry_key[:SHARD_WIDTH]
        assert path.parent.name == shard_name(entry_key)
        assert path.exists()
        assert not cache.legacy_path_for(entry_key).exists()

    def test_legacy_flat_entry_read_through(self, tmp_path):
        """A pre-shard cache keeps working verbatim: flat entries are
        found, loaded, and counted without any migration step."""
        cache = ResultCache(tmp_path)
        task = make_task(("t",), _double, 21)
        entry_key = cache.entry_key(task.key, TINY)
        OrchestrationContext(cache=cache).run([task], fingerprint=TINY)
        # Demote the entry to the legacy flat layout by hand.
        cache.path_for(entry_key).rename(cache.legacy_path_for(entry_key))
        (tmp_path / shard_name(entry_key)).rmdir()

        fresh = ResultCache(tmp_path)
        assert fresh.exists(entry_key)
        ctx = OrchestrationContext(cache=fresh)
        assert ctx.run([task], fingerprint=TINY) == {("t",): 42}
        assert ctx.stats.hits == 1 and ctx.stats.executed == 0
        assert scan_cache_entry_keys(tmp_path) == {entry_key}

    def test_scan_counts_coexisting_copies_once(self, tmp_path):
        """Mid-migration a key can exist flat AND sharded; scans (and
        therefore `queue status` results_cached) count it once."""
        cache = ResultCache(tmp_path)
        sharded = cache.path_for("k1")
        sharded.parent.mkdir(parents=True)
        sharded.write_bytes(b"x")
        cache.legacy_path_for("k1").write_bytes(b"x")
        cache.legacy_path_for("k2").write_bytes(b"x")
        assert scan_cache_entry_keys(tmp_path) == {"k1", "k2"}

    def test_sharded_copy_preferred_over_flat(self, tmp_path):
        """When both layouts hold a key, the sharded copy wins: new
        stores go there, so it is the fresher of the two."""
        cache = ResultCache(tmp_path)
        task = make_task(("t",), _double, 21)
        entry_key = cache.entry_key(task.key, TINY)
        cache.store(entry_key, task.key, "sharded-value")
        stale = ResultCache(tmp_path)
        # Plant a conflicting flat copy with valid entry structure.
        import pickle as pickle_module

        sharded_bytes = cache.path_for(entry_key).read_bytes()
        entry = pickle_module.loads(sharded_bytes)
        entry["payload"] = "flat-value"
        cache.legacy_path_for(entry_key).write_bytes(
            pickle_module.dumps(entry)
        )
        assert stale.load(entry_key) == (True, "sharded-value")

    def test_corrupt_sharded_copy_falls_back_to_flat(self, tmp_path):
        """A torn sharded write must not mask a readable flat entry."""
        cache = ResultCache(tmp_path)
        task = make_task(("t",), _double, 21)
        entry_key = cache.entry_key(task.key, TINY)
        cache.store(entry_key, task.key, 42)
        cache.path_for(entry_key).rename(cache.legacy_path_for(entry_key))
        cache.path_for(entry_key).write_bytes(b"torn")

        fresh = ResultCache(tmp_path)
        assert fresh.load(entry_key) == (True, 42)
        assert fresh.stats.corrupt_discarded == 1
        # The corrupt sharded file was removed, not left to re-discard.
        assert not cache.path_for(entry_key).exists()

    def test_non_shard_directories_never_scanned(self, tmp_path):
        """`queue/` and `service/` live inside the cache directory;
        their names are longer than a shard's, so scans skip them and
        whatever .pkl files they hold (failure records!)."""
        from repro.orchestration.cache import is_shard_dir

        assert not is_shard_dir("queue")
        assert not is_shard_dir("service")
        assert not is_shard_dir(".hidden")
        assert is_shard_dir("ab") and is_shard_dir("k1")

        cache = ResultCache(tmp_path)
        failed = tmp_path / "queue" / "failed"
        failed.mkdir(parents=True)
        (failed / "record.pkl").write_bytes(b"x")
        runs = tmp_path / "service" / "runs"
        runs.mkdir(parents=True)
        (runs / "stray.pkl").write_bytes(b"x")
        cache.store("k1", ("t",), 1)
        assert scan_cache_entry_keys(tmp_path) == {"k1"}

    def test_serial_process_queue_identical_on_sharded_cache(
        self, tmp_path
    ):
        """The three-backend equivalence holds across the new layout --
        and a queue run warms the same sharded entries a serial run
        then hits."""
        from repro.orchestration import QueueBackend, default_queue_dir

        serial = _fig12(TINY)
        cache_dir = tmp_path / "cache"
        queue_ctx = OrchestrationContext(
            cache=ResultCache(cache_dir),
            backend=QueueBackend(default_queue_dir(cache_dir)),
        )
        with queue_ctx:
            queued = _fig12(TINY, queue_ctx)
        assert serial.metrics == queued.metrics
        warm_ctx = OrchestrationContext(cache=ResultCache(cache_dir))
        warm = _fig12(TINY, warm_ctx)
        assert serial.metrics == warm.metrics
        assert warm_ctx.stats.hits == warm_ctx.stats.submitted == 3


# ----------------------------------------------------------------------
# Hashing primitives.
# ----------------------------------------------------------------------


class TestHashing:
    def test_canonicalize_dataclass_field_order_independent(self):
        assert stable_hash(TINY) == stable_hash(
            ExperimentScale(**{
                f: getattr(TINY, f)
                for f in ("rows_per_bank", "banks", "modules", "n_mixes",
                          "requests_per_core", "hc_first_values",
                          "svard_profiles", "seed")
            })
        )

    def test_dict_order_irrelevant(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_type_distinctions(self):
        assert stable_hash(1) != stable_hash(1.0)
        assert stable_hash("1") != stable_hash(1)
        assert stable_hash((1,)) != stable_hash(1)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError, match="canonicalize"):
            canonicalize(object())

    def test_omit_if_none_fields_are_invisible_when_unset(self):
        # The device dimension rides on ExperimentScale behind an
        # OMIT_IF_NONE field: leaving it unset must not perturb any
        # pre-existing cache key.
        base = ExperimentScale()
        assert "device" not in canonicalize(base)
        assert "device" in canonicalize(
            dataclasses.replace(base, device="DDR4-3200")
        )
        assert stable_hash(base) != stable_hash(
            dataclasses.replace(base, device="LPDDR4-3200")
        )

    def test_pinned_cache_keys_for_default_configs(self):
        # Frozen hashes of the two central dataclasses, captured before
        # the device-generation refactor.  If either moves, every
        # cached DDR4 artifact silently invalidates -- do not update
        # these without meaning to.
        assert stable_hash(ExperimentScale()) == (
            "e6768f8dd8f7950c4bd054525e81a73c6ca6c0f1904a08e36594c355cdaac886"
        )
        assert stable_hash(SystemConfig()) == (
            "4e943bfcfa900302845bf9338ace0e850ec5eb8d69443ad69f6ba2b577742a15"
        )

    def test_progress_callback_sees_every_task(self, tmp_path):
        seen = []
        ctx = OrchestrationContext(
            cache=ResultCache(tmp_path),
            progress=lambda done, total, key: seen.append((done, total, key)),
        )
        tasks = [make_task((i,), _double, i) for i in range(3)]
        ctx.run(tasks, fingerprint=None)
        assert [s[0] for s in seen] == [1, 2, 3]
        assert all(s[1] == 3 for s in seen)
