"""Tests for clustering, feature extraction, and F1 correlation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.clustering import best_k, kmeans_1d, silhouette_score_1d, sweep_k
from repro.analysis.correlation import (
    FeatureCorrelation,
    binarize_measured,
    confusion_matrix,
    correlate_features,
    f1_micro,
    f1_score_weighted,
    fraction_above_threshold,
    predict_from_feature,
    strong_features,
)
from repro.analysis.features import SpatialFeature, extract_features
from repro.faults.modules import FEATURE_CORRELATED_MODULES, MODULES, module_by_label


class TestKMeans1d:
    def test_recovers_separated_clusters(self):
        data = np.concatenate([np.zeros(50), np.full(50, 10.0), np.full(50, 20.0)])
        labels, centroids = kmeans_1d(data, 3)
        assert len(np.unique(labels)) == 3
        assert sorted(np.round(centroids)) == [0, 10, 20]

    def test_single_cluster(self):
        labels, centroids = kmeans_1d(np.array([1.0, 2.0, 3.0]), 1)
        assert np.all(labels == 0)
        assert centroids[0] == pytest.approx(2.0)

    def test_deterministic(self):
        data = np.random.default_rng(0).normal(size=200)
        a, _ = kmeans_1d(data, 4)
        b, _ = kmeans_1d(data, 4)
        assert np.array_equal(a, b)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            kmeans_1d(np.array([1.0]), 2)
        with pytest.raises(ValueError):
            kmeans_1d(np.array([1.0, 2.0]), 0)

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            kmeans_1d(np.zeros((3, 3)), 2)


class TestSilhouette:
    def test_perfect_separation_scores_high(self):
        data = np.concatenate([np.zeros(40), np.full(40, 100.0)])
        labels = (data > 50).astype(int)
        assert silhouette_score_1d(data, labels) > 0.95

    def test_bad_clustering_scores_low(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=100)
        labels = rng.integers(0, 2, size=100)
        assert silhouette_score_1d(data, labels) < 0.3

    def test_requires_two_clusters(self):
        with pytest.raises(ValueError):
            silhouette_score_1d(np.arange(10.0), np.zeros(10, dtype=int))

    def test_subsampling_keeps_all_clusters(self):
        data = np.concatenate([np.zeros(3000), np.full(5, 100.0)])
        labels = (data > 50).astype(int)
        score = silhouette_score_1d(data, labels, max_points=100)
        assert score > 0.9

    def test_sweep_peaks_at_true_k(self):
        """The Fig 8 property: silhouette maximal at the true count."""
        data = np.concatenate([np.full(100, v * 10.0) for v in range(6)])
        scores = sweep_k(data, range(2, 12))
        assert best_k(scores) == 6

    def test_best_k_empty_rejected(self):
        with pytest.raises(ValueError):
            best_k({})


class TestFeatureExtraction:
    def test_feature_count_and_shape(self):
        features, matrix, banks = extract_features(256, 64, (1, 4))
        assert matrix.shape == (512, len(features))
        assert set(banks) == {1, 4}

    def test_kinds_present(self):
        features, _, _ = extract_features(256, 64, (1,))
        kinds = {f.kind for f in features}
        assert kinds == {"bank", "row", "subarray", "distance"}

    def test_row_bits_correct(self):
        features, matrix, _ = extract_features(256, 64, (1,))
        row_bit_0 = [i for i, f in enumerate(features)
                     if f.kind == "row" and f.bit == 0][0]
        assert list(matrix[:4, row_bit_0]) == [0, 1, 0, 1]

    def test_subarray_bit(self):
        features, matrix, _ = extract_features(256, 64, (1,))
        sa_bit_0 = [i for i, f in enumerate(features)
                    if f.kind == "subarray" and f.bit == 0][0]
        assert matrix[0, sa_bit_0] == 0
        assert matrix[64, sa_bit_0] == 1
        assert matrix[128, sa_bit_0] == 0

    def test_distance_is_min_to_edge(self):
        features, matrix, _ = extract_features(256, 64, (1,))
        dist_bit_0 = [i for i, f in enumerate(features)
                      if f.kind == "distance" and f.bit == 0][0]
        # Row 0 has distance 0; row 1 distance 1; row 63 distance 0.
        assert matrix[0, dist_bit_0] == 0
        assert matrix[1, dist_bit_0] == 1
        assert matrix[63, dist_bit_0] == 0

    def test_feature_short_name(self):
        assert SpatialFeature("row", 7).short_name == "Ro[7]"
        assert SpatialFeature("distance", 7).short_name == "Dist[7]"

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            SpatialFeature("column", 0)
        with pytest.raises(ValueError):
            extract_features(0, 64, (1,))


class TestF1Machinery:
    def test_confusion_matrix(self):
        actual = np.array([0, 0, 1, 1])
        predicted = np.array([0, 1, 1, 1])
        classes, matrix = confusion_matrix(actual, predicted)
        assert list(classes) == [0, 1]
        assert matrix[0, 0] == 1 and matrix[0, 1] == 1 and matrix[1, 1] == 2

    def test_f1_perfect(self):
        y = np.array([0, 1, 2, 0, 1, 2])
        assert f1_score_weighted(y, y) == pytest.approx(1.0)
        assert f1_micro(y, y) == pytest.approx(1.0)

    def test_f1_micro_is_accuracy(self):
        actual = np.array([0, 0, 1, 1])
        predicted = np.array([0, 1, 1, 1])
        assert f1_micro(actual, predicted) == pytest.approx(0.75)

    def test_predict_from_feature_majority(self):
        feature = np.array([0, 0, 0, 1, 1, 1])
        target = np.array([5, 5, 7, 9, 9, 9])
        predicted = predict_from_feature(feature, target)
        assert list(predicted) == [5, 5, 5, 9, 9, 9]

    def test_binarize_balanced(self):
        measured = np.array([1, 1, 2, 2, 3, 3, 4, 4])
        target = binarize_measured(measured)
        assert target.sum() == 4

    def test_binarize_degenerate(self):
        measured = np.full(10, 42)
        target = binarize_measured(measured)
        assert len(np.unique(target)) == 1

    def test_fraction_above_threshold(self):
        correlations = [
            FeatureCorrelation(SpatialFeature("row", b), f1)
            for b, f1 in enumerate((0.3, 0.6, 0.9))
        ]
        fractions = fraction_above_threshold(correlations, [0.0, 0.5, 0.8, 1.0])
        assert fractions[0.0] == pytest.approx(1.0)
        assert fractions[0.5] == pytest.approx(2 / 3)
        assert fractions[0.8] == pytest.approx(1 / 3)
        assert fractions[1.0] == 0.0


def measured_for(label, rows=2048, banks=(1, 4)):
    spec = module_by_label(label)
    measured = np.concatenate(
        [
            spec.generate_field(bank=b, rows_per_bank=rows, seed=0).measured_hc_first()
            for b in banks
        ]
    )
    params = spec.variation_params(rows)
    features, matrix, _ = extract_features(rows, params.subarray_rows, banks)
    return features, matrix, measured


class TestTakeaway6:
    """Only S0/S1/S3/S4 have strongly correlated spatial features."""

    @pytest.mark.parametrize("label", FEATURE_CORRELATED_MODULES)
    def test_correlated_modules_have_strong_features(self, label):
        features, matrix, measured = measured_for(label)
        correlations = correlate_features(features, matrix, measured)
        strong = strong_features(correlations)
        assert strong, f"{label} should expose F1 > 0.7 features"
        assert all(c.f1 <= 0.80 for c in correlations), (
            "no feature should exceed 0.8 (paper observation)"
        )

    @pytest.mark.parametrize(
        "label", sorted(set(MODULES) - set(FEATURE_CORRELATED_MODULES))
    )
    def test_uncorrelated_modules_have_none(self, label):
        features, matrix, measured = measured_for(label, rows=1024)
        correlations = correlate_features(features, matrix, measured)
        assert not strong_features(correlations), (
            f"{label} should have no F1 > 0.7 feature"
        )

    def test_s0_strong_features_match_table3_drivers(self):
        features, matrix, measured = measured_for("S0")
        strong = strong_features(correlate_features(features, matrix, measured))
        names = {c.feature.short_name for c in strong}
        assert "Ro[7]" in names
        assert "Sa[0]" in names
