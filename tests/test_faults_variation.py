"""Tests for the spatial variation field generator and module registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.datapatterns import DATA_PATTERNS, DataPattern, bitwise_inverse
from repro.faults.modules import (
    FEATURE_CORRELATED_MODULES,
    MODULES,
    REPRESENTATIVE_MODULES,
    Manufacturer,
    module_by_label,
    modules_by_manufacturer,
)
from repro.faults.variation import (
    HC_128K,
    HC_GRID,
    SpatialVariationField,
    VariationFieldParams,
)


class TestDataPatterns:
    def test_six_patterns(self):
        assert len(DATA_PATTERNS) == 6

    def test_table2_fills(self):
        assert DataPattern.ROW_STRIPE.aggressor_fill == 0xFF
        assert DataPattern.ROW_STRIPE.victim_fill == 0x00
        assert DataPattern.CHECKERBOARD.aggressor_fill == 0xAA
        assert DataPattern.CHECKERBOARD.victim_fill == 0x55
        assert DataPattern.COLUMN_STRIPE.aggressor_fill == 0xAA
        assert DataPattern.COLUMN_STRIPE.victim_fill == 0xAA

    def test_inverse_pairs(self):
        for pattern in DataPattern:
            assert pattern.inverse.inverse is pattern
            assert pattern.inverse.aggressor_fill == bitwise_inverse(
                pattern.aggressor_fill
            )

    def test_bit_difference(self):
        assert DataPattern.ROW_STRIPE.bit_difference_fraction == 1.0
        assert DataPattern.COLUMN_STRIPE.bit_difference_fraction == 0.0
        assert DataPattern.CHECKERBOARD.bit_difference_fraction == 1.0

    def test_from_fills(self):
        assert DataPattern.from_fills(0xFF, 0x00) is DataPattern.ROW_STRIPE
        assert DataPattern.from_fills(0x12, 0x34) is None

    def test_bitwise_inverse_bounds(self):
        with pytest.raises(ValueError):
            bitwise_inverse(256)


class TestHcGrid:
    def test_grid_matches_algorithm1(self):
        expected_k = [1, 2, 4, 8, 12, 16, 24, 32, 40, 48, 56, 64, 96, 128]
        assert list(HC_GRID) == [k * 1024 for k in expected_k]

    def test_grid_sorted(self):
        assert list(HC_GRID) == sorted(HC_GRID)


def generate(label="S0", rows=4096, bank=0, seed=1):
    return module_by_label(label).generate_field(
        bank=bank, rows_per_bank=rows, seed=seed
    )


class TestFieldGeneration:
    def test_hc_first_within_support(self):
        field = generate("S0")
        spec = module_by_label("S0")
        assert field.hc_first.min() >= 0.9 * spec.hc_min - 1e-9
        assert field.hc_first.max() <= spec.hc_max + 1e-9

    def test_measured_mean_matches_table5(self):
        # Table 5 averages grid-measured values, so the calibration
        # target is the *snapped* mean, not the continuous one.
        field = generate("S0", rows=16384)
        spec = module_by_label("S0")
        assert field.measured_hc_first().mean() == pytest.approx(
            spec.hc_avg, rel=0.05
        )

    def test_measured_values_on_grid(self):
        field = generate("H1")
        measured = field.measured_hc_first()
        assert set(np.unique(measured)).issubset(set(HC_GRID))

    def test_measured_min_matches_table5(self):
        # With enough rows, the weakest measured value hits the module's
        # published minimum HC_first grid value.
        spec = module_by_label("M0")
        field = generate("M0", rows=16384)
        assert field.measured_hc_first().min() == spec.hc_min

    def test_ber_mean_matches_fig3(self):
        for label in ("H0", "M1", "S0"):
            spec = module_by_label(label)
            field = generate(label, rows=8192)
            assert field.ber_sat.mean() == pytest.approx(spec.ber_mean, rel=0.02)

    def test_ber_cv_matches_fig3(self):
        for label in ("M1", "S1", "M2"):
            spec = module_by_label(label)
            field = generate(label, rows=8192)
            cv = 100.0 * field.ber_sat.std() / field.ber_sat.mean()
            assert cv == pytest.approx(spec.ber_cv_pct, rel=0.15)

    def test_deterministic_for_same_seed(self):
        a = generate("S0", seed=3)
        b = generate("S0", seed=3)
        assert np.array_equal(a.hc_first, b.hc_first)
        assert np.array_equal(a.wcdp_index, b.wcdp_index)

    def test_different_banks_differ_rowwise(self):
        a = generate("S0", bank=0)
        b = generate("S0", bank=1)
        assert not np.array_equal(a.hc_first, b.hc_first)

    def test_banks_share_distribution(self):
        """Obsv 2/6: banks of a module have similar distributions."""
        fields = [generate("H1", rows=8192, bank=b) for b in (1, 4, 10, 15)]
        means = [f.hc_first.mean() for f in fields]
        assert max(means) / min(means) < 1.05

    def test_hc_first_irregular_across_rows(self):
        """Obsv 9: adjacent rows' HC_first values are weakly correlated."""
        field = generate("H1", rows=8192)
        x = field.hc_first
        r = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert abs(r) < 0.45

    def test_ber_regular_across_rows(self):
        """Obsv 4: adjacent rows' BER values are strongly correlated."""
        field = generate("H1", rows=8192)
        x = field.ber_sat
        r = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert r > 0.8

    def test_normalized_to_min_starts_at_one(self):
        field = generate("S0")
        norm = field.normalized_to_min()
        assert norm.min() == pytest.approx(1.0)

    def test_validation_rejects_bad_params(self):
        with pytest.raises(ValueError):
            VariationFieldParams(
                rows_per_bank=16, hc_min=100, hc_avg=50, hc_max=200,
                ber_mean=0.01, ber_cv_pct=1.0,
            )
        with pytest.raises(ValueError):
            VariationFieldParams(
                rows_per_bank=16, hc_min=10, hc_avg=50, hc_max=200,
                ber_mean=1.5, ber_cv_pct=1.0,
            )


class TestModuleRegistry:
    def test_fifteen_modules(self):
        assert len(MODULES) == 15

    def test_labels(self):
        expected = {f"H{i}" for i in range(5)}
        expected |= {f"M{i}" for i in range(5)}
        expected |= {f"S{i}" for i in range(5)}
        assert set(MODULES) == expected

    def test_manufacturer_partition(self):
        for manufacturer in Manufacturer:
            specs = modules_by_manufacturer(manufacturer)
            assert len(specs) == 5
            assert all(s.label.startswith(manufacturer.value) for s in specs)

    def test_table5_spot_checks(self):
        h0 = module_by_label("H0")
        assert h0.hc_min == 16 * 1024
        assert h0.hc_max == 96 * 1024
        assert h0.rows_per_bank == 128 * 1024
        m0 = module_by_label("M0")
        assert m0.hc_min == 8 * 1024
        assert m0.organization == "x16"
        s3 = module_by_label("S3")
        assert s3.rows_per_bank == 32 * 1024
        assert s3.density_gb == 4

    def test_total_chip_count_is_144(self):
        # Table 1: 144 chips across the 15 modules.
        assert sum(spec.n_chips for spec in MODULES.values()) == 144

    def test_feature_effects_only_on_table3_modules(self):
        for label, spec in MODULES.items():
            if label in FEATURE_CORRELATED_MODULES:
                assert spec.feature_effects
            else:
                assert not spec.feature_effects

    def test_representative_modules(self):
        assert set(REPRESENTATIVE_MODULES) == {"H1", "M0", "S0"}

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError):
            module_by_label("X9")

    def test_scaling_keeps_marginals(self):
        spec = module_by_label("S0")
        params = spec.variation_params(rows_per_bank=2048)
        assert params.rows_per_bank == 2048
        assert params.hc_min == spec.hc_min
        assert params.subarray_rows <= 2048 // 4

    def test_hc_avg_between_min_max_for_all(self):
        for spec in MODULES.values():
            assert spec.hc_min <= spec.hc_avg <= spec.hc_max


@given(
    label=st.sampled_from(sorted(MODULES)),
    rows=st.sampled_from([512, 1024, 2048]),
    seed=st.integers(min_value=0, max_value=10),
)
@settings(max_examples=25, deadline=None)
def test_property_fields_always_valid(label, rows, seed):
    field = module_by_label(label).generate_field(rows_per_bank=rows, seed=seed)
    assert np.all(field.hc_first > 0)
    assert np.all(field.ber_sat > 0)
    assert np.all(field.ber_sat <= 0.5)
    assert np.all((field.wcdp_index >= 0) & (field.wcdp_index < 4))
    assert len(field.hc_first) == rows
