"""Tests for the bank state machine and cell-array storage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram.bank import Bank, BankState, TimingError
from repro.dram.cells import CellArray, count_mismatched_bits
from repro.dram.timing import DDR4_3200


@pytest.fixture
def bank():
    return Bank(timing=DDR4_3200)


class TestBankStateMachine:
    def test_initial_state(self, bank):
        assert bank.state is BankState.PRECHARGED
        assert bank.open_row is None

    def test_activate_then_precharge(self, bank):
        bank.activate(1000.0, row=42)
        assert bank.state is BankState.ACTIVE
        assert bank.open_row == 42
        closure = bank.precharge(1000.0 + DDR4_3200.tRAS)
        assert closure.row == 42
        assert closure.on_time_ns == pytest.approx(DDR4_3200.tRAS)
        assert bank.state is BankState.PRECHARGED

    def test_double_activate_rejected(self, bank):
        bank.activate(1000.0, row=1)
        with pytest.raises(TimingError):
            bank.activate(2000.0, row=2)

    def test_early_precharge_violates_tras(self, bank):
        bank.activate(1000.0, row=1)
        with pytest.raises(TimingError):
            bank.precharge(1000.0 + DDR4_3200.tRAS / 2)

    def test_early_activate_violates_trp(self, bank):
        bank.activate(1000.0, row=1)
        bank.precharge(1000.0 + DDR4_3200.tRAS)
        with pytest.raises(TimingError):
            bank.activate(1000.0 + DDR4_3200.tRAS + DDR4_3200.tRP / 2, row=2)

    def test_legal_act_pre_act_sequence(self, bank):
        t = 1000.0
        bank.activate(t, row=1)
        t = bank.ready_for_pre(t)
        bank.precharge(t)
        t = bank.ready_for_act(t)
        bank.activate(t, row=2)
        assert bank.open_row == 2
        assert bank.activation_count == 2

    def test_precharge_idle_bank_is_noop(self, bank):
        assert bank.precharge(500.0) is None

    def test_relaxed_mode_allows_violations(self, bank):
        bank.activate(1000.0, row=1)
        closure = bank.precharge(1000.1, strict=False)
        assert closure.on_time_ns == pytest.approx(0.1)
        bank.activate(1000.2, row=2, strict=False)
        assert bank.open_row == 2

    def test_column_access_requires_open_row(self, bank):
        with pytest.raises(TimingError):
            bank.check_column_access(1000.0)

    def test_column_access_requires_trcd(self, bank):
        bank.activate(1000.0, row=1)
        with pytest.raises(TimingError):
            bank.check_column_access(1000.0 + DDR4_3200.tRCD / 2)
        bank.check_column_access(1000.0 + DDR4_3200.tRCD)


class TestCellArray:
    def test_unwritten_row_reads_background(self):
        cells = CellArray(rows_per_bank=16, row_bytes=64, background=0xAB)
        assert np.all(cells.read_row(3) == 0xAB)

    def test_uniform_fill_roundtrip(self):
        cells = CellArray(rows_per_bank=16, row_bytes=64)
        cells.write_row(5, 0x55)
        assert np.all(cells.read_row(5) == 0x55)

    def test_bytes_roundtrip(self):
        cells = CellArray(rows_per_bank=16, row_bytes=4)
        cells.write_row(0, b"\x01\x02\x03\x04")
        assert list(cells.read_row(0)) == [1, 2, 3, 4]

    def test_array_shape_checked(self):
        cells = CellArray(rows_per_bank=16, row_bytes=4)
        with pytest.raises(ValueError):
            cells.write_row(0, np.zeros(5, dtype=np.uint8))

    def test_read_returns_copy(self):
        cells = CellArray(rows_per_bank=16, row_bytes=4)
        cells.write_row(0, 0xFF)
        data = cells.read_row(0)
        data[:] = 0
        assert np.all(cells.read_row(0) == 0xFF)

    def test_flip_bits(self):
        cells = CellArray(rows_per_bank=16, row_bytes=4)
        cells.write_row(0, 0x00)
        cells.flip_bits(0, np.array([0, 9]))
        data = cells.read_row(0)
        assert data[0] == 0x01
        assert data[1] == 0x02

    def test_flip_is_involution(self):
        cells = CellArray(rows_per_bank=16, row_bytes=4)
        cells.write_row(0, 0x0F)
        cells.flip_bits(0, np.array([3]))
        cells.flip_bits(0, np.array([3]))
        assert np.all(cells.read_row(0) == 0x0F)

    def test_copy_row(self):
        cells = CellArray(rows_per_bank=16, row_bytes=4)
        cells.write_row(1, 0xAA)
        cells.copy_row(1, 2)
        assert np.all(cells.read_row(2) == 0xAA)

    def test_write_column(self):
        cells = CellArray(rows_per_bank=16, row_bytes=16)
        cells.write_column(0, 1, np.array([9, 8], dtype=np.uint8))
        data = cells.read_row(0)
        assert data[2] == 9 and data[3] == 8

    def test_bounds_checked(self):
        cells = CellArray(rows_per_bank=4, row_bytes=4)
        with pytest.raises(ValueError):
            cells.read_row(4)
        with pytest.raises(ValueError):
            cells.write_row(-1, 0)

    def test_lazy_materialization(self):
        cells = CellArray(rows_per_bank=1 << 17, row_bytes=8192)
        cells.write_row(77, 0x00)
        assert cells.materialized_rows == 1
        assert cells.row_is_materialized(77)
        assert not cells.row_is_materialized(78)


class TestCountMismatchedBits:
    def test_identical_rows(self):
        a = np.zeros(8, dtype=np.uint8)
        assert count_mismatched_bits(a, a.copy()) == 0

    def test_all_bits_differ(self):
        a = np.zeros(8, dtype=np.uint8)
        b = np.full(8, 0xFF, dtype=np.uint8)
        assert count_mismatched_bits(a, b) == 64

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            count_mismatched_bits(np.zeros(4, np.uint8), np.zeros(5, np.uint8))


@given(
    bits=st.lists(st.integers(min_value=0, max_value=255), unique=True, max_size=40)
)
@settings(max_examples=50)
def test_property_flip_count_matches_ber_numerator(bits):
    """Flipping n distinct bits yields exactly n mismatches."""
    cells = CellArray(rows_per_bank=2, row_bytes=32)
    cells.write_row(0, 0x5A)
    expected = cells.read_row(0)
    cells.flip_bits(0, np.array(bits, dtype=np.int64))
    assert count_mismatched_bits(cells.read_row(0), expected) == len(bits)
