"""Integration tests: device model + read-disturbance fault model."""

import numpy as np
import pytest

from repro.dram.cells import count_mismatched_bits
from repro.dram.commands import act, pre, rd, ref, wait, wr
from repro.dram.device import DramDevice, TimingViolation
from repro.dram.geometry import DramGeometry
from repro.dram.mapping import RowScrambler, ScramblingScheme
from repro.faults.disturbance import DisturbanceModel

from tests.conftest import make_tiny_spec


def make_device(spec, geometry, *, seed=0, scramble=ScramblingScheme.IDENTITY):
    model = DisturbanceModel(
        spec,
        rows_per_bank=geometry.rows_per_bank,
        row_bits=geometry.row_bytes * 8,
        seed=seed,
    )
    device = DramDevice(
        geometry=geometry,
        scrambler=RowScrambler(rows_per_bank=geometry.rows_per_bank, scheme=scramble),
        observer=model,
        seed=seed,
    )
    return device, model


class TestCommandExecution:
    def test_clock_advances_monotonically(self, tiny_spec, tiny_geometry):
        device, _ = make_device(tiny_spec, tiny_geometry)
        times = [device.clock_ns]
        for command in (act(0, 10), wait(100.0), pre(0), act(0, 12), pre(0)):
            device.execute_one(command)
            times.append(device.clock_ns)
        assert times == sorted(times)

    def test_act_pre_respects_tras(self, tiny_spec, tiny_geometry):
        device, _ = make_device(tiny_spec, tiny_geometry)
        device.execute([act(0, 10), pre(0)])
        assert device.clock_ns >= device.timing.tRAS

    def test_rd_wr_require_open_row(self, tiny_spec, tiny_geometry):
        device, _ = make_device(tiny_spec, tiny_geometry)
        with pytest.raises(Exception):
            device.execute_one(rd(0, 0))

    def test_ref_with_open_row_rejected(self, tiny_spec, tiny_geometry):
        device, _ = make_device(tiny_spec, tiny_geometry)
        device.execute_one(act(0, 10))
        with pytest.raises(TimingViolation):
            device.execute_one(ref())

    def test_wait_advances_exactly(self, tiny_spec, tiny_geometry):
        device, _ = make_device(tiny_spec, tiny_geometry)
        start = device.clock_ns
        device.execute_one(wait(123.0))
        assert device.clock_ns == pytest.approx(start + 123.0)


class TestReadDisturbance:
    def test_no_flips_below_threshold(self, tiny_spec, tiny_geometry):
        device, model = make_device(tiny_spec, tiny_geometry)
        victim = 33
        device.write_row(0, victim, 0x00)
        expected = device.read_row(0, victim)
        hc_first = model.true_hc_first(0)[victim]
        device.hammer(0, [victim - 1, victim + 1], count=int(hc_first * 0.5))
        observed = device.read_row(0, victim)
        assert count_mismatched_bits(observed, expected) == 0

    def test_flips_above_threshold(self, tiny_spec, tiny_geometry):
        device, model = make_device(tiny_spec, tiny_geometry)
        victim = 33
        device.write_row(0, victim, 0x00)
        expected = device.read_row(0, victim)
        hc_first = model.true_hc_first(0)[victim]
        device.hammer(0, [victim - 1, victim + 1], count=int(hc_first * 4) + 1)
        observed = device.read_row(0, victim)
        assert count_mismatched_bits(observed, expected) >= 1

    def test_first_flip_at_hc_first(self, tiny_spec, tiny_geometry):
        device, model = make_device(tiny_spec, tiny_geometry)
        victim = 40
        hc_first = model.true_hc_first(0)[victim]
        device.write_row(0, victim, 0x00)
        expected = device.read_row(0, victim)
        device.hammer(0, [victim - 1, victim + 1], count=int(np.ceil(hc_first)))
        observed = device.read_row(0, victim)
        assert count_mismatched_bits(observed, expected) >= 1

    def test_victim_rewrite_restores(self, tiny_spec, tiny_geometry):
        device, model = make_device(tiny_spec, tiny_geometry)
        victim = 33
        device.write_row(0, victim, 0x00)
        hc_first = model.true_hc_first(0)[victim]
        device.hammer(0, [victim - 1, victim + 1], count=int(hc_first * 4))
        device.write_row(0, victim, 0x00)
        observed = device.read_row(0, victim)
        assert np.all(observed == 0x00)

    def test_flips_persist_across_reads(self, tiny_spec, tiny_geometry):
        device, model = make_device(tiny_spec, tiny_geometry)
        victim = 33
        device.write_row(0, victim, 0x00)
        hc_first = model.true_hc_first(0)[victim]
        device.hammer(0, [victim - 1, victim + 1], count=int(hc_first * 4))
        first = device.read_row(0, victim)
        second = device.read_row(0, victim)
        assert np.array_equal(first, second)

    def test_subarray_isolation(self, tiny_spec, tiny_geometry):
        """Rows across a subarray boundary are never disturbed."""
        device, model = make_device(tiny_spec, tiny_geometry)
        boundary = tiny_geometry.subarray_rows  # row 64 starts subarray 1
        outside_victim = boundary - 1  # last row of subarray 0
        aggressor = boundary  # first row of subarray 1
        device.write_row(0, outside_victim, 0x00)
        expected = device.read_row(0, outside_victim)
        device.hammer(0, [aggressor], count=100_000)
        observed = device.read_row(0, outside_victim)
        assert count_mismatched_bits(observed, expected) == 0

    def test_single_sided_weaker_than_double(self, tiny_spec, tiny_geometry):
        device, model = make_device(tiny_spec, tiny_geometry)
        victim = 33
        hc_first = model.true_hc_first(0)[victim]
        device.write_row(0, victim, 0x00)
        expected = device.read_row(0, victim)
        # Single-sided with HC just above threshold: 0.5 exposure per
        # activation means it needs ~2x the count; at 1.2x it stays clean.
        device.hammer(0, [victim - 1], count=int(hc_first * 1.2))
        observed = device.read_row(0, victim)
        assert count_mismatched_bits(observed, expected) == 0

    def test_bulk_matches_command_by_command(self, tiny_spec, tiny_geometry):
        victim = 35
        results = []
        for mode in ("bulk", "commands"):
            device, model = make_device(tiny_spec, tiny_geometry, seed=7)
            device.write_row(0, victim, 0x00)
            hc_first = model.true_hc_first(0)[victim]
            count = int(hc_first * 3)
            if mode == "bulk":
                device.hammer(0, [victim - 1, victim + 1], count=count)
            else:
                commands = []
                for _ in range(count):
                    commands += [act(0, victim + 1), pre(0)]
                    commands += [act(0, victim - 1), pre(0)]
                device.execute(commands)
            results.append(device.read_row(0, victim))
        assert np.array_equal(results[0], results[1])

    def test_refresh_resets_exposure(self, tiny_spec, tiny_geometry):
        device, model = make_device(tiny_spec, tiny_geometry)
        victim = 33
        device.write_row(0, victim, 0x00)
        expected = device.read_row(0, victim)
        hc_first = model.true_hc_first(0)[victim]
        half = int(hc_first * 0.7)
        device.hammer(0, [victim - 1, victim + 1], count=half)
        device.refresh_all_rows()
        device.hammer(0, [victim - 1, victim + 1], count=half)
        observed = device.read_row(0, victim)
        assert count_mismatched_bits(observed, expected) == 0

    def test_rowpress_reduces_required_count(self, tiny_spec, tiny_geometry):
        device, model = make_device(tiny_spec, tiny_geometry)
        victim = 33
        device.write_row(0, victim, 0x00)
        expected = device.read_row(0, victim)
        hc_first = model.true_hc_first(0)[victim]
        # 0.6x HC_first does not flip at 36 ns but does at 2 us.
        device.hammer(0, [victim - 1, victim + 1], count=int(hc_first * 0.6),
                      t_agg_on_ns=2000.0)
        observed = device.read_row(0, victim)
        assert count_mismatched_bits(observed, expected) >= 1


class TestScramblingInteraction:
    def test_hammering_logical_neighbors_misses_physical_victims(self):
        """With scrambling, naive logical +/-1 hammering is ineffective
        for rows whose physical neighbours differ."""
        spec = make_tiny_spec(scrambling=ScramblingScheme.MIRROR)
        geometry = DramGeometry(rows_per_bank=256, subarray_rows=64,
                                columns_per_row=16)
        device, model = make_device(spec, geometry,
                                    scramble=ScramblingScheme.MIRROR)
        victim = 35  # logical 35 -> physical 36 under MIRROR
        device.write_row(0, victim, 0x00)
        expected = device.read_row(0, victim)
        hc = int(model.true_hc_first(0).max() * 3)
        # Correct aggressors come from the scrambler.
        below, above = device.scrambler.physical_neighbors(victim)
        device.hammer(0, [below, above], count=hc)
        observed = device.read_row(0, victim)
        assert count_mismatched_bits(observed, expected) >= 1


class TestRowClone:
    def test_intra_subarray_clone_copies_data(self, tiny_spec, tiny_geometry):
        device, _ = make_device(tiny_spec, tiny_geometry)
        device.rowclone_success_rate = 1.0
        device.write_row(0, 10, 0xAB)
        device.write_row(0, 20, 0x00)
        device.execute([act(0, 10)])
        device.execute_one(pre(0), strict=False)
        device.execute_one(act(0, 20), strict=False)
        device.execute_one(pre(0), strict=False)
        assert np.all(device.read_row(0, 20) == 0xAB)

    def test_cross_subarray_clone_fails(self, tiny_spec, tiny_geometry):
        device, _ = make_device(tiny_spec, tiny_geometry)
        device.rowclone_success_rate = 1.0
        device.write_row(0, 10, 0xAB)
        device.write_row(0, 100, 0x00)  # subarray 1
        device.execute([act(0, 10)])
        device.execute_one(pre(0), strict=False)
        device.execute_one(act(0, 100), strict=False)
        device.execute_one(pre(0), strict=False)
        assert np.all(device.read_row(0, 100) == 0x00)

    def test_slow_act_does_not_clone(self, tiny_spec, tiny_geometry):
        device, _ = make_device(tiny_spec, tiny_geometry)
        device.rowclone_success_rate = 1.0
        device.write_row(0, 10, 0xAB)
        device.write_row(0, 20, 0x00)
        device.execute([act(0, 10), pre(0), act(0, 20), pre(0)])
        assert np.all(device.read_row(0, 20) == 0x00)
